#include "hw/trace.hpp"

#include <cstdio>

namespace ss::hw {

void Tracer::record(TraceRecord r) {
  records_.push_back(std::move(r));
  if (depth_ != 0 && records_.size() > depth_) records_.pop_front();
}

std::string Tracer::render(const TraceRecord& r) {
  char buf[96];
  std::string out;
  std::snprintf(buf, sizeof buf, "#%llu vt=%llu ",
                static_cast<unsigned long long>(r.decision_cycle),
                static_cast<unsigned long long>(r.vtime_start));
  out += buf;
  if (r.idle) {
    out += "idle\n";
    return out;
  }
  out += "load[";
  for (const AttrWord& w : r.loaded) {
    std::snprintf(buf, sizeof buf, "%sS%u:D%u:%u/%u", w.pending ? "" : "~",
                  w.id, w.deadline.raw(), w.loss_num, w.loss_den);
    out += buf;
    out += ' ';
  }
  if (!r.loaded.empty()) out.pop_back();
  out += "] -> block[";
  for (const AttrWord& w : r.block) {
    std::snprintf(buf, sizeof buf, "S%u ", w.id);
    out += buf;
  }
  if (!r.block.empty()) out.pop_back();
  out += "]";
  if (r.circulated) {
    std::snprintf(buf, sizeof buf, " circ=S%u", *r.circulated);
    out += buf;
  }
  out += " grants=[";
  for (const SlotId s : r.grants) {
    std::snprintf(buf, sizeof buf, "S%u ", s);
    out += buf;
  }
  if (!r.grants.empty()) out.pop_back();
  out += "] drops=[";
  for (const SlotId s : r.drops) {
    std::snprintf(buf, sizeof buf, "S%u ", s);
    out += buf;
  }
  if (!r.drops.empty()) out.pop_back();
  std::snprintf(buf, sizeof buf, "] (%llu cyc)\n",
                static_cast<unsigned long long>(r.hw_cycles));
  out += buf;
  return out;
}

std::string Tracer::render_all() const {
  std::string out;
  for (const TraceRecord& r : records_) out += render(r);
  return out;
}

std::string Tracer::render_tail(std::size_t n) const {
  std::string out;
  const std::size_t start =
      (n == 0 || n >= records_.size()) ? 0 : records_.size() - n;
  for (std::size_t i = start; i < records_.size(); ++i) {
    out += render(records_[i]);
  }
  return out;
}

std::string Tracer::to_chrome_json() const {
  std::string out =
      "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0,"
      "\"name\":\"process_name\",\"args\":{\"name\":\"ss chip\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0,"
      "\"name\":\"thread_name\",\"args\":{\"name\":\"decisions\"}}";
  char buf[192];
  // Decision cycles are placed end-to-end on a synthetic hw-cycle
  // timeline (1 cycle = 1 ns) so relative durations read correctly.
  std::uint64_t ts = 0;
  for (const TraceRecord& r : records_) {
    std::string ids;
    for (const SlotId s : r.grants) {
      std::snprintf(buf, sizeof buf, "S%u ", s);
      ids += buf;
    }
    if (!ids.empty()) ids.pop_back();
    const std::uint64_t dur = r.hw_cycles ? r.hw_cycles : 1;
    std::snprintf(buf, sizeof buf,
                  ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"name\":\"%s\",\"args\":{"
                  "\"decision_cycle\":%llu,\"vtime\":%llu,",
                  static_cast<double>(ts) / 1000.0,
                  static_cast<double>(dur) / 1000.0,
                  r.idle ? "idle" : "decision",
                  static_cast<unsigned long long>(r.decision_cycle),
                  static_cast<unsigned long long>(r.vtime_start));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "\"grants\":\"%s\",\"drops\":%zu,\"circulated\":%d}}",
                  ids.c_str(), r.drops.size(),
                  r.circulated ? static_cast<int>(*r.circulated) : -1);
    out += buf;
    ts += dur;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace ss::hw
