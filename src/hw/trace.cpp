#include "hw/trace.hpp"

#include <cstdio>

namespace ss::hw {

void Tracer::record(TraceRecord r) {
  records_.push_back(std::move(r));
  if (depth_ != 0 && records_.size() > depth_) records_.pop_front();
}

std::string Tracer::render(const TraceRecord& r) {
  char buf[96];
  std::string out;
  std::snprintf(buf, sizeof buf, "#%llu vt=%llu ",
                static_cast<unsigned long long>(r.decision_cycle),
                static_cast<unsigned long long>(r.vtime_start));
  out += buf;
  if (r.idle) {
    out += "idle\n";
    return out;
  }
  out += "load[";
  for (const AttrWord& w : r.loaded) {
    std::snprintf(buf, sizeof buf, "%sS%u:D%u:%u/%u", w.pending ? "" : "~",
                  w.id, w.deadline.raw(), w.loss_num, w.loss_den);
    out += buf;
    out += ' ';
  }
  if (!r.loaded.empty()) out.pop_back();
  out += "] -> block[";
  for (const AttrWord& w : r.block) {
    std::snprintf(buf, sizeof buf, "S%u ", w.id);
    out += buf;
  }
  if (!r.block.empty()) out.pop_back();
  out += "]";
  if (r.circulated) {
    std::snprintf(buf, sizeof buf, " circ=S%u", *r.circulated);
    out += buf;
  }
  out += " grants=[";
  for (const SlotId s : r.grants) {
    std::snprintf(buf, sizeof buf, "S%u ", s);
    out += buf;
  }
  if (!r.grants.empty()) out.pop_back();
  out += "] drops=[";
  for (const SlotId s : r.drops) {
    std::snprintf(buf, sizeof buf, "S%u ", s);
    out += buf;
  }
  if (!r.drops.empty()) out.pop_back();
  std::snprintf(buf, sizeof buf, "] (%llu cyc)\n",
                static_cast<unsigned long long>(r.hw_cycles));
  out += buf;
  return out;
}

std::string Tracer::render_all() const {
  std::string out;
  for (const TraceRecord& r : records_) out += render(r);
  return out;
}

}  // namespace ss::hw
