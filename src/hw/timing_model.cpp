#include "hw/timing_model.hpp"

#include "util/sim_time.hpp"

namespace ss::hw {

TimingModel::TimingModel(const AreaModel& area, ControlTiming timing,
                         SortSchedule schedule)
    : area_(area), timing_(timing), schedule_(schedule) {}

TimingReport TimingModel::report(unsigned slots, ArchConfig arch,
                                 bool block_scheduling) const {
  ControlUnit cu(slots, schedule_passes(schedule_, slots), timing_);
  TimingReport r{};
  r.slots = slots;
  r.arch = arch;
  r.clock_mhz = area_.clock_mhz(slots, arch);
  r.latency_cycles = cu.decision_latency_cycles();
  r.sustained_cycles = cu.sustained_cycles_per_decision();
  r.decision_latency_ns =
      static_cast<double>(r.latency_cycles) * 1000.0 / r.clock_mhz;
  r.decisions_per_sec =
      r.clock_mhz * 1e6 / static_cast<double>(r.sustained_cycles);
  r.frames_per_sec = r.decisions_per_sec *
                     (block_scheduling ? static_cast<double>(slots) : 1.0);
  return r;
}

bool TimingModel::feasible(unsigned slots, ArchConfig arch,
                           bool block_scheduling, std::uint64_t frame_bytes,
                           double line_gbps) const {
  const TimingReport r = report(slots, arch, block_scheduling);
  const double pt_ns = packet_time_ns(frame_bytes, line_gbps);
  const double budget_ns =
      block_scheduling ? pt_ns * static_cast<double>(slots) : pt_ns;
  return r.decision_latency_ns <= budget_ns;
}

double TimingModel::required_rate(std::uint64_t frame_bytes,
                                  double line_gbps) {
  return 1e9 / packet_time_ns(frame_bytes, line_gbps);
}

}  // namespace ss::hw
