// pci.hpp — timing model of the 32-bit / 33 MHz PCI path to the FPGA card.
//
// The endsystem realization exchanges 16-bit arrival-time offsets and
// 5-bit Stream IDs over PCI (Figure 3), using programmed I/O for small
// transfers ("push") and card-DMA bursts for bulk transfers ("pull").
// Section 5.2 reports 469,483 pps excluding PCI transfer time and 299,065
// pps including PCI PIO — i.e. PIO adds ~1.2 us per packet round-trip.
// The defaults below are calibrated to that gap: PCI posted writes are
// cheap (~0.3 us) while PIO reads stall the processor for a full bus
// round-trip (~0.9 us), a well-known asymmetry of the bus.
#pragma once

#include <cstdint>

#include "hw/fault_hooks.hpp"
#include "telemetry/instruments.hpp"
#include "util/sim_time.hpp"

namespace ss::hw {

struct PciConfig {
  double bus_mhz = 33.0;
  unsigned bus_bytes = 4;              ///< 32-bit bus
  std::uint64_t pio_write_ns = 300;    ///< per 32-bit posted write
  std::uint64_t pio_read_ns = 900;     ///< per 32-bit blocking read
  std::uint64_t dma_setup_ns = 2000;   ///< descriptor + doorbell
  double dma_efficiency = 0.85;        ///< fraction of theoretical burst BW
};

class PciModel {
 public:
  explicit PciModel(const PciConfig& cfg = {}) : cfg_(cfg) {}

  /// Theoretical burst bandwidth in bytes/ns (132 MB/s for 32/33).
  [[nodiscard]] double burst_bytes_per_ns() const {
    return cfg_.bus_mhz * 1e6 * cfg_.bus_bytes / 1e9;
  }

  /// Host "push" of `bytes` via programmed I/O writes.
  [[nodiscard]] Nanos pio_write(std::size_t bytes) const;

  /// Host programmed-I/O read of `bytes` (e.g. scheduled Stream IDs).
  [[nodiscard]] Nanos pio_read(std::size_t bytes) const;

  /// Card-DMA "pull" burst of `bytes` (setup + streaming at the efficient
  /// burst rate).  Used when the Stream processor batches arrival-times.
  [[nodiscard]] Nanos dma_transfer(std::size_t bytes) const;

  /// The per-packet PCI cost of the ShareStreams exchange: one arrival
  /// time pushed, one Stream ID read back, amortized over a batch of
  /// `batch` packets per PIO transaction (arrival times are 16-bit so two
  /// pack per bus word; IDs are 5-bit so four pack comfortably).
  [[nodiscard]] Nanos per_packet_pio_exchange(unsigned batch = 1) const;

  [[nodiscard]] const PciConfig& config() const { return cfg_; }

  /// Attach live metrics (nullptr detaches).  Transfer counts, bytes and
  /// modeled bus-busy time are recorded on every modeled transfer; the
  /// cost when detached is one null test per call.
  void attach_metrics(telemetry::PciMetrics* m) { metrics_ = m; }

  /// Attach a fault injector (nullptr detaches).  Only the try_* variants
  /// consult it; the infallible methods above keep their exact behavior.
  void attach_faults(FaultInjector* f) { faults_ = f; }

  /// Fallible variants: each attempt may fail with a modeled bus timeout
  /// (the injector's penalty stands in for the master-abort / retry-limit
  /// window).  On failure no data moves; the caller owns retry policy.
  [[nodiscard]] FallibleNanos try_pio_write(std::size_t bytes) const;
  [[nodiscard]] FallibleNanos try_pio_read(std::size_t bytes) const;
  [[nodiscard]] FallibleNanos try_dma_transfer(std::size_t bytes) const;

 private:
  PciConfig cfg_;
  telemetry::PciMetrics* metrics_ = nullptr;
  FaultInjector* faults_ = nullptr;
};

}  // namespace ss::hw
