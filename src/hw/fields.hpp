// fields.hpp — bit-exact attribute fields of the ShareStreams fabric.
//
// Figure 4 of the paper fixes the register widths: 16-bit packet deadlines,
// 8-bit loss numerator, 8-bit loss denominator, 16-bit arrival times and
// 5-bit Register (stream-slot) IDs.  The simulator stores exactly these
// widths so that wrap-around and saturation behave like the hardware.
#pragma once

#include <cstdint>

#include "util/serial.hpp"

namespace ss::hw {

inline constexpr unsigned kDeadlineBits = 16;
inline constexpr unsigned kArrivalBits = 16;
inline constexpr unsigned kLossBits = 8;
inline constexpr unsigned kIdBits = 5;

/// Maximum stream-slots addressable by a 5-bit ID (the paper scales a
/// single Virtex-1000 from 4 to 32 slots).
inline constexpr unsigned kMaxSlots = 1u << kIdBits;

using Deadline = Serial<kDeadlineBits>;   ///< wrap-aware 16-bit deadline
using Arrival = Serial<kArrivalBits>;     ///< wrap-aware 16-bit arrival time
using Loss = std::uint8_t;                ///< 8-bit loss numerator/denominator
using SlotId = std::uint8_t;              ///< 5-bit register ID (0..31)

/// The attribute record a Register Base block drives onto the shuffle
/// network each SCHEDULE cycle: 16+8+8+16+5 = 53 bits of payload plus a
/// request-pending flag (an idle slot must always lose).
struct AttrWord {
  Deadline deadline{};
  Loss loss_num = 0;    ///< x' — losses still tolerable in current window
  Loss loss_den = 0;    ///< y' — remaining window length
  Arrival arrival{};
  SlotId id = 0;
  bool pending = false;  ///< slot has a backlogged request

  friend bool operator==(const AttrWord&, const AttrWord&) = default;
};

/// Pack an AttrWord into its 54-bit hardware encoding (bit 53 = pending).
/// Used by the SRAM/streaming interfaces and by tests that check the
/// encode/decode round-trip.
[[nodiscard]] constexpr std::uint64_t pack(const AttrWord& w) {
  std::uint64_t v = 0;
  v |= static_cast<std::uint64_t>(w.deadline.raw());
  v |= static_cast<std::uint64_t>(w.loss_num) << 16;
  v |= static_cast<std::uint64_t>(w.loss_den) << 24;
  v |= static_cast<std::uint64_t>(w.arrival.raw()) << 32;
  v |= static_cast<std::uint64_t>(w.id & 0x1Fu) << 48;
  v |= static_cast<std::uint64_t>(w.pending ? 1 : 0) << 53;
  return v;
}

[[nodiscard]] constexpr AttrWord unpack(std::uint64_t v) {
  AttrWord w;
  w.deadline = Deadline{v & 0xFFFFu};
  w.loss_num = static_cast<Loss>((v >> 16) & 0xFFu);
  w.loss_den = static_cast<Loss>((v >> 24) & 0xFFu);
  w.arrival = Arrival{(v >> 32) & 0xFFFFu};
  w.id = static_cast<SlotId>((v >> 48) & 0x1Fu);
  w.pending = ((v >> 53) & 1u) != 0;
  return w;
}

}  // namespace ss::hw
