// fields.hpp — bit-exact attribute fields of the ShareStreams fabric.
//
// Figure 4 of the paper fixes the register widths: 16-bit packet deadlines,
// 8-bit loss numerator, 8-bit loss denominator, 16-bit arrival times and
// 5-bit Register (stream-slot) IDs.  The simulator stores exactly these
// widths so that wrap-around and saturation behave like the hardware.
#pragma once

#include <cassert>
#include <cstdint>

#include "util/serial.hpp"

namespace ss::hw {

inline constexpr unsigned kDeadlineBits = 16;
inline constexpr unsigned kArrivalBits = 16;
inline constexpr unsigned kLossBits = 8;
inline constexpr unsigned kIdBits = 5;

/// Maximum stream-slots addressable by a 5-bit ID (the paper scales a
/// single Virtex-1000 from 4 to 32 slots).
inline constexpr unsigned kMaxSlots = 1u << kIdBits;

using Deadline = Serial<kDeadlineBits>;   ///< wrap-aware 16-bit deadline
using Arrival = Serial<kArrivalBits>;     ///< wrap-aware 16-bit arrival time
using Loss = std::uint8_t;                ///< 8-bit loss numerator/denominator
using SlotId = std::uint8_t;              ///< 5-bit register ID (0..31)

/// The attribute record a Register Base block drives onto the shuffle
/// network each SCHEDULE cycle: 16+8+8+16+5 = 53 bits of payload plus a
/// request-pending flag (an idle slot must always lose).
struct AttrWord {
  Deadline deadline{};
  Loss loss_num = 0;    ///< x' — losses still tolerable in current window
  Loss loss_den = 0;    ///< y' — remaining window length
  Arrival arrival{};
  SlotId id = 0;
  bool pending = false;  ///< slot has a backlogged request

  friend bool operator==(const AttrWord&, const AttrWord&) = default;
};

/// Pack an AttrWord into its 54-bit hardware encoding (bit 53 = pending).
/// Used by the SRAM/streaming interfaces and by tests that check the
/// encode/decode round-trip.
///
/// Checked contract: the ID field is 5 bits, so `unpack(pack(w)) == w`
/// only holds for `w.id < kMaxSlots`.  An out-of-range ID is a
/// construction bug upstream — asserted in debug builds, saturated to the
/// top slot in release builds so the encoding never silently aliases a
/// different slot's word (the old `& 0x1F` mask mapped id 33 onto slot 1).
[[nodiscard]] constexpr std::uint64_t pack(const AttrWord& w) {
  assert(w.id < kMaxSlots && "AttrWord.id exceeds the 5-bit hardware field");
  const std::uint64_t id = w.id < kMaxSlots ? w.id : kMaxSlots - 1;
  std::uint64_t v = 0;
  v |= static_cast<std::uint64_t>(w.deadline.raw());
  v |= static_cast<std::uint64_t>(w.loss_num) << 16;
  v |= static_cast<std::uint64_t>(w.loss_den) << 24;
  v |= static_cast<std::uint64_t>(w.arrival.raw()) << 32;
  v |= id << 48;
  v |= static_cast<std::uint64_t>(w.pending ? 1 : 0) << 53;
  return v;
}

/// Structure-of-arrays register file: the same 54 bits per slot as
/// AttrWord, but stored as contiguous per-field lanes at the exact
/// hardware widths — 16-bit deadline/arrival lanes, 8-bit loss lanes, a
/// pending bitmask — so a whole shuffle stage can be evaluated as a few
/// vector loads instead of N strided struct reads.  The Register Base
/// blocks publish into this layout each LOAD phase (see
/// RegisterBlock::publish) and the SIMD decision kernel consumes it.
struct AttrSoA {
  alignas(64) std::uint16_t deadline[kMaxSlots] = {};
  alignas(64) std::uint16_t arrival[kMaxSlots] = {};
  alignas(32) std::uint8_t loss_num[kMaxSlots] = {};
  alignas(32) std::uint8_t loss_den[kMaxSlots] = {};
  alignas(32) std::uint8_t id[kMaxSlots] = {};
  std::uint32_t pending_mask = 0;  ///< bit i = lane i backlogged

  [[nodiscard]] constexpr bool is_pending(unsigned lane) const {
    return (pending_mask >> lane) & 1u;
  }

  /// Scatter one AttrWord across the lanes (tests / scalar bridges).
  constexpr void set(unsigned lane, const AttrWord& w) {
    assert(lane < kMaxSlots);
    deadline[lane] = w.deadline.raw();
    arrival[lane] = w.arrival.raw();
    loss_num[lane] = w.loss_num;
    loss_den[lane] = w.loss_den;
    id[lane] = w.id;
    pending_mask = (pending_mask & ~(1u << lane)) |
                   (w.pending ? (1u << lane) : 0u);
  }

  /// Gather one lane back into the AoS view.
  [[nodiscard]] constexpr AttrWord get(unsigned lane) const {
    assert(lane < kMaxSlots);
    AttrWord w;
    w.deadline = Deadline{deadline[lane]};
    w.arrival = Arrival{arrival[lane]};
    w.loss_num = loss_num[lane];
    w.loss_den = loss_den[lane];
    w.id = static_cast<SlotId>(id[lane]);
    w.pending = is_pending(lane);
    return w;
  }
};

[[nodiscard]] constexpr AttrWord unpack(std::uint64_t v) {
  AttrWord w;
  w.deadline = Deadline{v & 0xFFFFu};
  w.loss_num = static_cast<Loss>((v >> 16) & 0xFFu);
  w.loss_den = static_cast<Loss>((v >> 24) & 0xFFu);
  w.arrival = Arrival{(v >> 32) & 0xFFFFu};
  w.id = static_cast<SlotId>((v >> 48) & 0x1Fu);
  w.pending = ((v >> 53) & 1u) != 0;
  return w;
}

}  // namespace ss::hw
