// decision_block.hpp — the single-cycle multi-attribute comparator.
//
// A Decision block (Figure 5) receives the attribute records of two
// stream-slots and orders them in ONE hardware cycle by evaluating every
// rule of Table 2 concurrently and selecting the output of the first rule
// whose guard holds:
//
//   1. Earliest-deadline first.
//   2. Equal deadlines: lowest window-constraint (x'/y') first.
//   3. Equal deadlines, both window-constraints zero: highest
//      window-denominator first.
//   4. Equal deadlines, equal non-zero window-constraints: lowest
//      window-numerator first.
//   5. All other cases: first-come-first-serve (earliest arrival; slot ID
//      breaks the final tie so the hardware order is total).
//
// The same block degrades to a *simple comparator* for fair-queuing /
// priority-class disciplines (ComparisonMode::kTagOnly compares only the
// 16-bit deadline/service-tag field), which is how the unified canonical
// architecture maps those disciplines without extra logic.
#pragma once

#include <cstdint>

#include "hw/fields.hpp"

namespace ss::hw {

/// Which attribute subsets the comparator consults.  Selecting a mode is a
/// configuration-register write in the hardware, not a re-synthesis.
enum class ComparisonMode : std::uint8_t {
  kDwcsFull,   ///< all Table-2 rules (window-constrained disciplines)
  kTagOnly,    ///< deadline/service-tag field only (EDF, WFQ/SFQ tags)
  kStatic,     ///< static priority held in the loss-denominator field
};

/// Which Table-2 rule produced an ordering — exposed for tests and for the
/// rule-coverage statistics in the ablation bench.
enum class Rule : std::uint8_t {
  kPendingOnly,      ///< exactly one side had a backlogged request
  kDeadline,         ///< rule 1
  kWindowConstraint, ///< rule 2
  kZeroDenominator,  ///< rule 3
  kNumerator,        ///< rule 4
  kFcfsArrival,      ///< rule 5 (arrival)
  kIdTieBreak,       ///< rule 5 fallback (total-order tie break)
};

struct DecisionResult {
  bool a_wins;  ///< true if the first operand is the higher-priority stream
  Rule rule;    ///< the rule that decided
};

/// Combinational ordering function of the Decision block.
[[nodiscard]] DecisionResult decide(const AttrWord& a, const AttrWord& b,
                                    ComparisonMode mode);

/// Convenience wrapper used by the shuffle network: winner/loser routing.
struct Ordered {
  AttrWord winner;
  AttrWord loser;
};
[[nodiscard]] Ordered order(const AttrWord& a, const AttrWord& b,
                            ComparisonMode mode);

/// Area of one Decision block in Virtex-I slices (Section 5.1: "the
/// Decision block was 190 slices").
inline constexpr unsigned kDecisionBlockSlices = 190;

}  // namespace ss::hw
