#include "hw/register_block.hpp"

namespace ss::hw {

void RegisterBlock::load(SlotId id, const SlotConfig& cfg) {
  id_ = id;
  cfg_ = cfg;
  deadline_ = cfg.initial_deadline;
  arrival_ = Arrival{0};
  xp_ = cfg.loss_num;
  yp_ = cfg.loss_den;
  pending_ = 0;
  expired_latch_ = false;
  counters_ = {};
}

void RegisterBlock::push_request(Arrival arrival) {
  // Arrival time latches only for the head-of-line request: FCFS ordering
  // (Table-2 rule 5) compares when the *currently contending* packet
  // arrived.
  if (pending_ == 0) arrival_ = arrival;
  ++pending_;
}

AttrWord RegisterBlock::attrs() const {
  AttrWord w;
  w.deadline = deadline_;
  w.loss_num = xp_;
  w.loss_den = yp_;
  w.arrival = arrival_;
  w.id = id_;
  w.pending = pending_ > 0;
  return w;
}

bool RegisterBlock::deadline_expired(std::uint64_t now) const {
  // 16-bit serial comparison against the low bits of vtime (what a
  // subtract-and-test-MSB comparator computes), latched sticky so a deep
  // backlog cannot wrap the head back into the "future".
  if (!expired_latch_ && deadline_ <= Deadline{now}) expired_latch_ = true;
  return expired_latch_;
}

void RegisterBlock::winner_window_adjust() {
  if (cfg_.mode != SlotMode::kDwcs) return;
  if (xp_ > 0) {
    // A window position consumed by a timely service.
    --xp_;
    --yp_;
  } else if (yp_ > 0) {
    // x' == 0: servicing a fully-constrained stream shrinks the remaining
    // window, lowering its rule-3 priority (the "winner priority is
    // effectively lowered" behaviour the paper describes).
    --yp_;
  }
  reset_window_if_complete();
}

void RegisterBlock::loser_window_adjust() {
  if (cfg_.mode != SlotMode::kDwcs) return;
  if (xp_ > 0) {
    // Tolerable loss: consume one of the x' allowed misses.
    --xp_;
    --yp_;
    reset_window_if_complete();
  } else {
    // Violation: the stream can tolerate no more losses.  Raising y'
    // raises its priority among zero-constraint streams (Table-2 rule 3),
    // so the scheduler compensates it in subsequent cycles.
    ++counters_.violations;
    if (yp_ < 0xFF) ++yp_;  // saturate at the 8-bit field limit
  }
}

void RegisterBlock::reset_window_if_complete() {
  if (xp_ == 0 && yp_ == 0) {
    xp_ = cfg_.loss_num;
    yp_ = cfg_.loss_den;
  }
}

bool RegisterBlock::service_update(std::uint64_t now, bool circulated) {
  if (pending_ == 0) return true;  // spurious grant of an idle slot
  const bool met = !deadline_expired(now);
  --pending_;
  ++counters_.serviced;
  if (!met) {
    ++counters_.late_transmissions;
    ++counters_.missed_deadlines;
  }
  if (circulated) {
    ++counters_.winner_cycles;
    winner_window_adjust();
    // The arrival register refreshes so FCFS tie-breaks favour slots that
    // have waited longest since their last grant.
    arrival_ = Arrival{now};
  }
  // Deadline bookkeeping: the next request's deadline is one period after
  // the one just served.  Every granted slot advances concurrently (each
  // Register Base block sees its own grant line) — only the *window*
  // adjustment above depends on the single circulated ID.
  if (cfg_.mode == SlotMode::kDwcs || cfg_.mode == SlotMode::kEdf ||
      cfg_.mode == SlotMode::kFairTag) {
    deadline_ += cfg_.period;
    // The head advanced: re-evaluate the expired latch for the new head.
    expired_latch_ = false;
    if (pending_ > 0) (void)deadline_expired(now);
  }
  return met;
}

RegisterBlock::MissResult RegisterBlock::miss_update_slow(std::uint64_t now) {
  if (!deadline_expired(now)) return {};
  ++counters_.missed_deadlines;
  loser_window_adjust();
  if (cfg_.droppable) {
    // The late head-of-line packet is dropped; the next request's deadline
    // is one period later.  Non-droppable streams keep waiting with the
    // expired deadline (and keep accumulating misses), exactly the
    // behaviour that produces Table 3's ~one-miss-per-cycle max-finding
    // column.
    --pending_;
    deadline_ += cfg_.period;
    expired_latch_ = false;
    if (pending_ > 0) (void)deadline_expired(now);
    return {true, true};
  }
  return {true, false};
}

}  // namespace ss::hw
