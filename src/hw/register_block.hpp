// register_block.hpp — per-stream state storage and attribute adjustment.
//
// A Register Base block ("Stream-slot") holds one stream's service
// attributes in CLB flip-flops and applies the DWCS attribute adjustments
// locally and concurrently every PRIORITY_UPDATE cycle (Section 4.3):
//
//   * the *winner* stream (its ID is circulated back through the network)
//     has its priority effectively lowered — the served packet consumes a
//     window position and the deadline advances by the request period;
//   * *loser* streams whose head-of-line deadline has expired take the
//     deadline-miss path — a tolerable loss consumes a window position,
//     a violated constraint (x' already 0) raises the stream's priority by
//     growing the window denominator (Table-2 rule 3 then favours it).
//
// Update-rule provenance: the ShareStreams paper defers the exact rules to
// DWCS (West & Poellabauer, RTSS 2000); the rules below are that paper's
// service/violation adjustments made bit-exact in the 8-bit loss fields.
// DESIGN.md §2 records this interpretation.
#pragma once

#include <cstdint>

#include "hw/fields.hpp"

namespace ss::hw {

/// Discipline mapping for a slot.  Selecting a mode configures which parts
/// of the update datapath are active (the unified-architecture insight of
/// Section 2: fair-queuing/priority-class simply bypass the update cycle).
enum class SlotMode : std::uint8_t {
  kDwcs,          ///< full window-constrained updates
  kEdf,           ///< deadline bookkeeping only; window fields frozen
  kStaticPrio,    ///< nothing updates; loss_den carries the priority
  kFairTag,       ///< fair-queuing service tags; update cycle bypassed
};

/// Static (load-time) configuration of a stream-slot.
struct SlotConfig {
  SlotMode mode = SlotMode::kDwcs;
  std::uint16_t period = 1;   ///< request period T_i (vtime units)
  Loss loss_num = 0;          ///< original x_i
  Loss loss_den = 1;          ///< original y_i (also priority in kStaticPrio)
  bool droppable = true;      ///< late packets are dropped (deadline advances)
  Deadline initial_deadline{};///< deadline of the first request
};

/// Performance counters each slot maintains (the paper: "missed deadlines
/// being registered in performance counters for each stream-slot").
struct SlotCounters {
  std::uint64_t missed_deadlines = 0;   ///< update cycles with expired head
  std::uint64_t violations = 0;         ///< window-constraint violations
  std::uint64_t serviced = 0;           ///< frames granted to this slot
  std::uint64_t late_transmissions = 0; ///< frames that left after deadline
  std::uint64_t winner_cycles = 0;      ///< decision cycles won (circulated)

  friend bool operator==(const SlotCounters&, const SlotCounters&) = default;
};

/// One Register Base block.
class RegisterBlock {
 public:
  RegisterBlock() = default;

  /// LOAD state: latch configuration and initial attributes.
  void load(SlotId id, const SlotConfig& cfg);

  /// A new request (packet arrival) for this slot.  `arrival` is the
  /// 16-bit arrival-time offset the Stream processor communicated.
  void push_request(Arrival arrival);

  /// Attribute word currently driven onto the shuffle network.
  [[nodiscard]] AttrWord attrs() const;

  /// PRIORITY_UPDATE when this slot's frame was granted this decision
  /// cycle.  `circulated` — this slot's ID was the one circulated through
  /// the network (it receives the winner window adjustment; in block mode
  /// only one of the N granted slots is circulated).  `now` — vtime at
  /// which the frame left on the link.  Returns true if the transmitted
  /// frame met its deadline.
  bool service_update(std::uint64_t now, bool circulated);

  /// Outcome of the miss path: whether a miss was registered and whether
  /// the late head request was dropped (droppable streams only).  The
  /// systems software needs `dropped` to discard the corresponding frame
  /// from the host-side queue.
  struct MissResult {
    bool missed = false;
    bool dropped = false;
  };

  /// PRIORITY_UPDATE miss path: called every decision cycle for slots that
  /// were NOT granted; applies the loser adjustment iff the head-of-line
  /// deadline has expired at vtime `now`.
  MissResult miss_update(std::uint64_t now);

  [[nodiscard]] const SlotCounters& counters() const { return counters_; }
  [[nodiscard]] const SlotConfig& config() const { return cfg_; }
  [[nodiscard]] SlotId id() const { return id_; }
  [[nodiscard]] std::uint32_t backlog() const { return pending_; }
  [[nodiscard]] Deadline deadline() const { return deadline_; }
  [[nodiscard]] Loss loss_num() const { return xp_; }
  [[nodiscard]] Loss loss_den() const { return yp_; }

  /// True iff the head request is late at vtime `now`.  Convention: the
  /// deadline is "the end of the request period BY which the packet must
  /// be scheduled" (Section 2), so a grant issued at now == deadline is
  /// already late (<= comparison).  A sticky per-slot `expired` flip-flop
  /// latches the condition: once a head request has expired it stays
  /// expired until the head advances, which keeps the 16-bit serial
  /// comparison meaningful even when a non-droppable backlog pushes the
  /// head deadline more than half the number space behind vtime (a real
  /// 16-bit comparator would silently invert there; the latch is the
  /// 1-FF hardware fix, and it makes the chip match the 64-bit software
  /// oracle).
  [[nodiscard]] bool deadline_expired(std::uint64_t now) const;

  /// SRAM-interface write of the deadline field.  Used by the fair-queuing
  /// mapping, where the field carries the head packet's per-packet service
  /// tag rather than a period-derived deadline.
  void set_deadline(Deadline d) {
    deadline_ = d;
    expired_latch_ = false;
  }

 private:
  void winner_window_adjust();
  void loser_window_adjust();
  void reset_window_if_complete();

  SlotId id_ = 0;
  SlotConfig cfg_{};
  Deadline deadline_{};
  Arrival arrival_{};
  Loss xp_ = 0;  ///< current loss numerator x'
  Loss yp_ = 1;  ///< current loss denominator y'
  std::uint32_t pending_ = 0;
  mutable bool expired_latch_ = false;  ///< sticky head-expired flip-flop
  SlotCounters counters_{};
};

/// Area of one Register Base block in Virtex-I slices (Section 5.1).
inline constexpr unsigned kRegisterBlockSlices = 150;

}  // namespace ss::hw
