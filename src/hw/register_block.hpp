// register_block.hpp — per-stream state storage and attribute adjustment.
//
// A Register Base block ("Stream-slot") holds one stream's service
// attributes in CLB flip-flops and applies the DWCS attribute adjustments
// locally and concurrently every PRIORITY_UPDATE cycle (Section 4.3):
//
//   * the *winner* stream (its ID is circulated back through the network)
//     has its priority effectively lowered — the served packet consumes a
//     window position and the deadline advances by the request period;
//   * *loser* streams whose head-of-line deadline has expired take the
//     deadline-miss path — a tolerable loss consumes a window position,
//     a violated constraint (x' already 0) raises the stream's priority by
//     growing the window denominator (Table-2 rule 3 then favours it).
//
// Update-rule provenance: the ShareStreams paper defers the exact rules to
// DWCS (West & Poellabauer, RTSS 2000); the rules below are that paper's
// service/violation adjustments made bit-exact in the 8-bit loss fields.
// DESIGN.md §2 records this interpretation.
#pragma once

#include <cstdint>

#include "hw/fields.hpp"
#include "hw/simd_kernel.hpp"

namespace ss::hw {

/// Discipline mapping for a slot.  Selecting a mode configures which parts
/// of the update datapath are active (the unified-architecture insight of
/// Section 2: fair-queuing/priority-class simply bypass the update cycle).
enum class SlotMode : std::uint8_t {
  kDwcs,          ///< full window-constrained updates
  kEdf,           ///< deadline bookkeeping only; window fields frozen
  kStaticPrio,    ///< nothing updates; loss_den carries the priority
  kFairTag,       ///< fair-queuing service tags; update cycle bypassed
};

/// Static (load-time) configuration of a stream-slot.
struct SlotConfig {
  SlotMode mode = SlotMode::kDwcs;
  std::uint16_t period = 1;   ///< request period T_i (vtime units)
  Loss loss_num = 0;          ///< original x_i
  Loss loss_den = 1;          ///< original y_i (also priority in kStaticPrio)
  bool droppable = true;      ///< late packets are dropped (deadline advances)
  Deadline initial_deadline{};///< deadline of the first request
};

/// Performance counters each slot maintains (the paper: "missed deadlines
/// being registered in performance counters for each stream-slot").
struct SlotCounters {
  std::uint64_t missed_deadlines = 0;   ///< update cycles with expired head
  std::uint64_t violations = 0;         ///< window-constraint violations
  std::uint64_t serviced = 0;           ///< frames granted to this slot
  std::uint64_t late_transmissions = 0; ///< frames that left after deadline
  std::uint64_t winner_cycles = 0;      ///< decision cycles won (circulated)

  friend bool operator==(const SlotCounters&, const SlotCounters&) = default;
};

/// One Register Base block.
class RegisterBlock {
 public:
  RegisterBlock() = default;

  /// LOAD state: latch configuration and initial attributes.
  void load(SlotId id, const SlotConfig& cfg);

  /// A new request (packet arrival) for this slot.  `arrival` is the
  /// 16-bit arrival-time offset the Stream processor communicated.
  void push_request(Arrival arrival);

  /// Attribute word currently driven onto the shuffle network.
  [[nodiscard]] AttrWord attrs() const;

  /// Drive this slot's attribute bus into the SoA register file — the
  /// same 54 bits attrs() materializes, written straight into the packed
  /// per-field lanes the SIMD decision kernel consumes.  Returns the
  /// pending bit instead of read-modify-writing soa.pending_mask so a
  /// caller publishing all N slots can accumulate the mask in a register
  /// (the per-lane RMW forms an N-deep store dependency chain otherwise)
  /// and store it once.
  [[nodiscard]] bool publish(AttrSoA& soa, unsigned lane) const {
    soa.deadline[lane] = deadline_.raw();
    soa.arrival[lane] = arrival_.raw();
    soa.loss_num[lane] = xp_;
    soa.loss_den[lane] = yp_;
    soa.id[lane] = id_;
    return pending_ > 0;
  }

  /// Direct-store twin of publish(): drive this slot's attribute bus
  /// straight into the SIMD lane file (the 16-bit-widened view the
  /// decision kernel consumes), skipping the AttrSoA gather + widen
  /// round-trip the chip's LOAD phase would otherwise pay every decision.
  void publish_lanes(simd::LaneRegs& lr, unsigned lane) const {
    lr.deadline[lane] = deadline_.raw();
    lr.arrival[lane] = arrival_.raw();
    lr.loss_num[lane] = xp_;
    lr.loss_den[lane] = yp_;
    lr.id[lane] = id_;
    lr.pend[lane] =
        static_cast<std::uint16_t>(0u - static_cast<unsigned>(pending_ > 0));
  }

  /// PRIORITY_UPDATE when this slot's frame was granted this decision
  /// cycle.  `circulated` — this slot's ID was the one circulated through
  /// the network (it receives the winner window adjustment; in block mode
  /// only one of the N granted slots is circulated).  `now` — vtime at
  /// which the frame left on the link.  Returns true if the transmitted
  /// frame met its deadline.
  bool service_update(std::uint64_t now, bool circulated);

  /// Outcome of the miss path: whether a miss was registered and whether
  /// the late head request was dropped (droppable streams only).  The
  /// systems software needs `dropped` to discard the corresponding frame
  /// from the host-side queue.
  struct MissResult {
    bool missed = false;
    bool dropped = false;
  };

  /// PRIORITY_UPDATE miss path: called every decision cycle for slots that
  /// were NOT granted; applies the loser adjustment iff the head-of-line
  /// deadline has expired at vtime `now`.  The no-deadline-semantics exits
  /// are inline — the caller runs this for every losing slot every cycle,
  /// and fair-queuing/static-priority slots never take the miss path.
  MissResult miss_update(std::uint64_t now) {
    if (pending_ == 0 || cfg_.mode == SlotMode::kStaticPrio ||
        cfg_.mode == SlotMode::kFairTag) {
      return {};
    }
    return miss_update_slow(now);
  }

  [[nodiscard]] const SlotCounters& counters() const { return counters_; }
  [[nodiscard]] const SlotConfig& config() const { return cfg_; }
  [[nodiscard]] SlotId id() const { return id_; }
  [[nodiscard]] std::uint32_t backlog() const { return pending_; }
  [[nodiscard]] Deadline deadline() const { return deadline_; }
  [[nodiscard]] Loss loss_num() const { return xp_; }
  [[nodiscard]] Loss loss_den() const { return yp_; }

  /// True iff the head request is late at vtime `now`.  Convention: the
  /// deadline is "the end of the request period BY which the packet must
  /// be scheduled" (Section 2), so a grant issued at now == deadline is
  /// already late (<= comparison).  A sticky per-slot `expired` flip-flop
  /// latches the condition: once a head request has expired it stays
  /// expired until the head advances, which keeps the 16-bit serial
  /// comparison meaningful even when a non-droppable backlog pushes the
  /// head deadline more than half the number space behind vtime (a real
  /// 16-bit comparator would silently invert there; the latch is the
  /// 1-FF hardware fix, and it makes the chip match the 64-bit software
  /// oracle).
  [[nodiscard]] bool deadline_expired(std::uint64_t now) const;

  /// SRAM-interface write of the deadline field.  Used by the fair-queuing
  /// mapping, where the field carries the head packet's per-packet service
  /// tag rather than a period-derived deadline.
  void set_deadline(Deadline d) {
    deadline_ = d;
    expired_latch_ = false;
  }

 private:
  MissResult miss_update_slow(std::uint64_t now);
  void winner_window_adjust();
  void loser_window_adjust();
  void reset_window_if_complete();

  SlotId id_ = 0;
  SlotConfig cfg_{};
  Deadline deadline_{};
  Arrival arrival_{};
  Loss xp_ = 0;  ///< current loss numerator x'
  Loss yp_ = 1;  ///< current loss denominator y'
  std::uint32_t pending_ = 0;
  mutable bool expired_latch_ = false;  ///< sticky head-expired flip-flop
  SlotCounters counters_{};
};

/// Area of one Register Base block in Virtex-I slices (Section 5.1).
inline constexpr unsigned kRegisterBlockSlices = 150;

}  // namespace ss::hw
