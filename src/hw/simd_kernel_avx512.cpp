// simd_kernel_avx512.cpp — the 32-lane AVX-512BW whole-plan kernel.
//
// Compiled with -mavx512f/-mavx512bw in its own translation unit;
// callers reach it only through simd::run_passes after the runtime CPU
// check, so a host without AVX-512 never executes a byte of this file.
//
// At 32 slots the entire lane file fits ONE zmm register per field, which
// removes the two structural costs the AVX2 kernel pays:
//   * partner materialization collapses to a single vpermw with the
//     lane^stride index vector — any butterfly stride, including 16,
//     in one shuffle instead of per-stride shufflelo/epi32/permute4x64
//     sequences and a cross-vector special case;
//   * every cascade rule evaluates straight into a __mmask32, so the
//     verdict accumulation is scalar k-mask arithmetic (and/andn/or on
//     32-bit masks) rather than 256-bit blends, and the pair-canonical
//     a_wins / tie / swap algebra runs on plain 32-bit integers.
// The decision semantics are bit-identical to hw::decide() and to the
// AVX2/SWAR kernels — same cascade order, same Serial<16> antipode
// tie-break, same duplicate-id full-tie handling (see run_plan_avx2's
// commentary; the differential campaigns referee all of them against the
// scalar oracle).
#include "hw/simd_kernel.hpp"

#if defined(SS_HAVE_AVX512)

#include <immintrin.h>

#include <array>
#include <bit>

namespace ss::hw::simd::detail {
namespace {

enum Field { kDl, kNu, kDe, kAr, kId, kPd, kFields };

// Wrap-aware 16-bit less-than per lane, lower-raw-wins at the antipode —
// the mask twin of Serial<16>::operator< and serial16_less_bf.
inline __mmask32 serial_less16(__m512i a, __m512i b) {
  const __m512i d = _mm512_sub_epi16(b, a);
  const __m512i msb = _mm512_set1_epi16(static_cast<short>(0x8000u));
  const __mmask32 lower =
      _mm512_cmpgt_epi16_mask(d, _mm512_setzero_si512());  // d in [1, 7FFF]
  const __mmask32 anti =
      _mm512_cmpeq_epi16_mask(d, msb) & _mm512_testn_epi16_mask(a, msb);
  return lower | anti;
}

// Verdict `v` overrides the accumulated verdict where guard `g` holds.
inline std::uint32_t sel(std::uint32_t aw, std::uint32_t v, std::uint32_t g) {
  return (aw & ~g) | (v & g);
}

// Which fields mode M's cascade actually READS (plus the FCFS floor's id
// and arrival, common to every mode).  Pendingness rides only when some
// lane might be idle — see run_plan_impl.
constexpr std::array<bool, kFields> rides_for(ComparisonMode m,
                                              bool all_pend) {
  std::array<bool, kFields> r{};
  r[kId] = r[kAr] = true;
  switch (m) {
    case ComparisonMode::kDwcsFull:
      r[kDl] = r[kNu] = r[kDe] = true;
      break;
    case ComparisonMode::kTagOnly:
      r[kDl] = true;
      break;
    case ComparisonMode::kStatic:
      r[kDe] = true;
      break;
  }
  r[kPd] = !all_pend;
  return r;
}

// The full Table-2 cascade, lowest-priority rule first, every rule one
// vector compare into a k-mask.  Lane i computes "self beats partner".
// `pa`/`pb` are the per-lane pending masks of self/partner, precomputed
// by the caller (all-ones when every lane pends, making the override a
// no-op).  M is a template parameter so each instantiation only
// references the partner fields its rides_for set materializes.
template <ComparisonMode M>
inline std::uint32_t cascade(const __m512i s[kFields],
                             const __m512i p[kFields], std::uint32_t pa,
                             std::uint32_t pb) {
  // FCFS floor: id tie-break (self.id <= partner.id), then distinct
  // arrivals.
  std::uint32_t aw = ~static_cast<std::uint32_t>(
      _mm512_cmpgt_epi16_mask(s[kId], p[kId]));
  aw = sel(aw, serial_less16(s[kAr], p[kAr]),
           _mm512_cmpneq_epi16_mask(s[kAr], p[kAr]));
  if constexpr (M == ComparisonMode::kDwcsFull) {
    // Rule 4: lowest numerator (loss fields <= 255, signed cmp ok).
    aw = sel(aw, _mm512_cmpgt_epi16_mask(p[kNu], s[kNu]),
             _mm512_cmpneq_epi16_mask(s[kNu], p[kNu]));
    // Rule 2: cross-multiplied window constraints (products to 65025,
    // unsigned compare).
    const __m512i lhs = _mm512_mullo_epi16(s[kNu], p[kDe]);
    const __m512i rhs = _mm512_mullo_epi16(p[kNu], s[kDe]);
    aw = sel(aw, _mm512_cmplt_epu16_mask(lhs, rhs),
             _mm512_cmpneq_epi16_mask(lhs, rhs));
    // Rule 3: both numerators zero — highest denominator.
    const std::uint32_t both_zero =
        _mm512_testn_epi16_mask(s[kNu], s[kNu]) &
        _mm512_testn_epi16_mask(p[kNu], p[kNu]);
    aw = sel(aw, _mm512_cmpgt_epi16_mask(s[kDe], p[kDe]),
             both_zero & _mm512_cmpneq_epi16_mask(s[kDe], p[kDe]));
    // Rule 1: earliest deadline.
    aw = sel(aw, serial_less16(s[kDl], p[kDl]),
             _mm512_cmpneq_epi16_mask(s[kDl], p[kDl]));
  } else if constexpr (M == ComparisonMode::kTagOnly) {
    aw = sel(aw, serial_less16(s[kDl], p[kDl]),
             _mm512_cmpneq_epi16_mask(s[kDl], p[kDl]));
  } else {
    aw = sel(aw, _mm512_cmpgt_epi16_mask(s[kDe], p[kDe]),
             _mm512_cmpneq_epi16_mask(s[kDe], p[kDe]));
  }
  // Pending-only rule overrides everything where exactly one side pends.
  return sel(aw, pa, pa ^ pb);
}

// Lane-index bits where (lane & stride) != 0 — the pair's upper lane.
inline std::uint32_t hi_lane_bits(unsigned stride) {
  switch (stride) {
    case 1: return 0xAAAAAAAAu;
    case 2: return 0xCCCCCCCCu;
    case 4: return 0xF0F0F0F0u;
    case 8: return 0xFF00FF00u;
    default: return 0xFFFF0000u;  // stride 16
  }
}

// Bit i of the result is bit i^stride of m — the mask-domain twin of the
// vpermw partner shuffle.
inline std::uint32_t mask_partner(std::uint32_t m, unsigned stride,
                                  std::uint32_t hi) {
  return ((m & hi) >> stride) | ((m & ~hi) << stride);
}

// The pass loop only moves fields mode M's cascade actually READS;
// every other field is pure payload that rides a tracked lane
// permutation and is gathered once at the end — the same trick the
// hardware plays by circulating only comparator inputs through the
// decision blocks.  Pendingness joins the payload set in the common
// saturated case (every lane backlogged, AllPend): all-ones lanes are
// invariant under any permutation and the pending-only override is a
// no-op, so the pend vector neither permutes, blends, nor gathers.
// Both knobs are template parameters: each of the six instantiations is
// straight-line vector code with the dead fields compiled out.
template <ComparisonMode M, bool AllPend>
void run_plan_impl(std::uint16_t* const fields[kFields],
                   __m512i self[kFields], std::span<const PassPlan> plan,
                   KernelStats& st) {
  constexpr std::array<bool, kFields> kRides = rides_for(M, AllPend);
  // kDwcsFull reads every attribute, so only non-DWCS modes carry
  // payload (AllPend excludes pend from both sets entirely).
  constexpr bool kAnyPayload = M != ComparisonMode::kDwcsFull;

  // Partner-lane permutation vectors (lane ^ stride) for the 5 butterfly
  // strides, hoisted out of the pass loop.
  const __m512i iota = _mm512_set_epi16(
      31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18, 17, 16, 15, 14,
      13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  __m512i pidx_by_log[5];
  for (unsigned l = 0; l < 5; ++l) {
    pidx_by_log[l] = _mm512_xor_si512(
        iota, _mm512_set1_epi16(static_cast<short>(1u << l)));
  }

  // perm[j] = the load-time lane whose word now sits in lane j.
  __m512i perm = iota;

  std::uint64_t swaps = 0;
  std::uint64_t pend_pairs = 0;
  for (const PassPlan& pp : plan) {
    const unsigned stride = pp.stride;
    const std::uint32_t hi = hi_lane_bits(stride);
    // Registered comparator inputs: one vpermw per riding field
    // materializes the partner lane for ANY butterfly stride.
    const __m512i pidx =
        pidx_by_log[std::countr_zero(stride)];
    __m512i partner[kFields];
    for (unsigned f = 0; f < kFields; ++f) {
      if (kRides[f]) partner[f] = _mm512_permutexvar_epi16(pidx, self[f]);
    }
    std::uint32_t pa = 0xFFFFFFFFu, pb = 0xFFFFFFFFu;
    if constexpr (!AllPend) {
      pa = _mm512_test_epi16_mask(self[kPd], self[kPd]);
      pb = _mm512_test_epi16_mask(partner[kPd], partner[kPd]);
    }
    // Per-lane verdict "self beats partner"; the pair's canonical a_wins
    // (a = lower lane) is (sw ^ hi) | tie — see run_plan_avx2 for the
    // antisymmetry/duplicate-id derivation, identical here.
    const std::uint32_t sw = cascade<M>(self, partner, pa, pb);
    const std::uint32_t tie = sw & mask_partner(sw, stride, hi);
    const std::uint32_t aw = (sw ^ hi) | tie;
    const std::uint32_t desc = pp.desc_bits;
    // swap iff a_wins XNOR descending (winner to the lower lane; a
    // descending comparator routes the winner up instead).  Both lanes of
    // a swapped pair raise a bit, so the popcounts halve to pair counts.
    const std::uint32_t swap = ~(aw ^ desc);
    swaps += std::popcount(swap) / 2u;
    pend_pairs += std::popcount(pa | mask_partner(pa, stride, hi)) / 2u;
    const auto k = static_cast<__mmask32>(swap);
    for (unsigned f = 0; f < kFields; ++f) {
      if (kRides[f]) {
        self[f] = _mm512_mask_blend_epi16(k, self[f], partner[f]);
      }
    }
    if constexpr (kAnyPayload) {
      perm = _mm512_mask_blend_epi16(
          k, perm, _mm512_permutexvar_epi16(pidx, perm));
    }
  }

  // Payload fields land with ONE gather through the final permutation
  // (all-pending pend lanes are all-ones: nothing to move, the store
  // rewrites the unchanged words).
  for (unsigned f = 0; f < kFields; ++f) {
    if (!kRides[f] && !(f == kPd && AllPend)) {
      self[f] = _mm512_permutexvar_epi16(perm, self[f]);
    }
    _mm512_storeu_si512(fields[f], self[f]);
  }
  st.swaps += swaps;
  st.pending_pairs += pend_pairs;
}

}  // namespace

bool run_plan_avx512(LaneRegs& r, unsigned n, std::span<const PassPlan> plan,
                     ComparisonMode mode, KernelStats& st) {
  if (n != 32) return false;
  for (const PassPlan& pp : plan) {
    if (!pp.butterfly || pp.stride > 16) return false;
  }
  std::uint16_t* const fields[kFields] = {r.deadline, r.loss_num, r.loss_den,
                                          r.arrival,  r.id,       r.pend};

  // Load the whole lane file once; every pass runs on registers.
  __m512i self[kFields];
  for (unsigned f = 0; f < kFields; ++f) {
    self[f] = _mm512_loadu_si512(fields[f]);
  }
  const bool all_pend =
      _mm512_test_epi16_mask(self[kPd], self[kPd]) == 0xFFFFFFFFu;

  switch (mode) {
    case ComparisonMode::kDwcsFull:
      all_pend ? run_plan_impl<ComparisonMode::kDwcsFull, true>(fields, self,
                                                                plan, st)
               : run_plan_impl<ComparisonMode::kDwcsFull, false>(fields, self,
                                                                 plan, st);
      break;
    case ComparisonMode::kTagOnly:
      all_pend ? run_plan_impl<ComparisonMode::kTagOnly, true>(fields, self,
                                                               plan, st)
               : run_plan_impl<ComparisonMode::kTagOnly, false>(fields, self,
                                                                plan, st);
      break;
    case ComparisonMode::kStatic:
      all_pend ? run_plan_impl<ComparisonMode::kStatic, true>(fields, self,
                                                              plan, st)
               : run_plan_impl<ComparisonMode::kStatic, false>(fields, self,
                                                               plan, st);
      break;
  }
  return true;
}

}  // namespace ss::hw::simd::detail

#endif  // SS_HAVE_AVX512
