#include "hw/decision_block_rtl.hpp"

namespace ss::hw::rtl {
namespace {

// 16-bit serial magnitude comparator: subtract and test the MSB of the
// modular difference, with the deterministic half-space tie-break the
// behavioural Serial<> uses.
bool serial16_less(std::uint16_t a, std::uint16_t b) {
  const std::uint16_t d = static_cast<std::uint16_t>(b - a);
  if (d == 0) return false;
  if (d == 0x8000u) return a < b;  // antipode: lower raw wins (see Serial<>)
  return d < 0x8000u;
}

}  // namespace

DecisionSignals evaluate(const AttrWord& a, const AttrWord& b) {
  DecisionSignals s;

  // --- concurrent sub-circuits (all evaluate every cycle, like gates) ---
  s.dl_equal = a.deadline.raw() == b.deadline.raw();
  s.dl_a_earlier = serial16_less(a.deadline.raw(), b.deadline.raw());
  s.dl_b_earlier = serial16_less(b.deadline.raw(), a.deadline.raw());

  s.cross_ab = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(a.loss_num) * b.loss_den);
  s.cross_ba = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(b.loss_num) * a.loss_den);

  s.xa_zero = a.loss_num == 0;
  s.xb_zero = b.loss_num == 0;

  s.arr_a_earlier = serial16_less(a.arrival.raw(), b.arrival.raw());
  s.arr_b_earlier = serial16_less(b.arrival.raw(), a.arrival.raw());

  s.only_a_pending = a.pending && !b.pending;
  s.only_b_pending = b.pending && !a.pending;

  // --- rule-valid bits (each = guard AND decisive) ---
  s.r_pending = s.only_a_pending || s.only_b_pending;
  s.r1_deadline = !s.dl_equal;
  const bool both_zero = s.xa_zero && s.xb_zero;
  // Rule 2 handles "not both zero" pairs via the cross products; rule 3
  // handles the both-zero pairs via the denominators.
  s.r2_constraint =
      s.dl_equal && !both_zero && (s.cross_ab != s.cross_ba);
  s.r3_denominator =
      s.dl_equal && both_zero && (a.loss_den != b.loss_den);
  s.r4_numerator = s.dl_equal && !both_zero &&
                   (s.cross_ab == s.cross_ba) &&
                   (a.loss_num != b.loss_num);
  s.r5_arrival = s.dl_equal && (a.arrival.raw() != b.arrival.raw()) &&
                 !s.r2_constraint && !s.r3_denominator && !s.r4_numerator;

  // --- priority-encoded verdict mux ---
  if (s.r_pending) {
    s.a_wins = s.only_a_pending;
  } else if (s.r1_deadline) {
    s.a_wins = s.dl_a_earlier;
  } else if (s.r2_constraint) {
    s.a_wins = s.cross_ab < s.cross_ba;
  } else if (s.r3_denominator) {
    s.a_wins = a.loss_den > b.loss_den;
  } else if (s.r4_numerator) {
    s.a_wins = a.loss_num < b.loss_num;
  } else if (s.r5_arrival) {
    s.a_wins = s.arr_a_earlier;
  } else {
    s.a_wins = a.id <= b.id;  // final deterministic tie-break
  }
  return s;
}

bool a_wins(const AttrWord& a, const AttrWord& b) {
  return evaluate(a, b).a_wins;
}

}  // namespace ss::hw::rtl
