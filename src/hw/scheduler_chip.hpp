// scheduler_chip.hpp — top level of the ShareStreams FPGA scheduler.
//
// Composes N Register Base blocks, the N/2-Decision-block recirculating
// shuffle-exchange network, and the Control & Steering unit into the
// complete scheduler of Figure 4.  The chip runs in one of two
// architectural configurations (the paper's first tradeoff):
//
//   * WR (max-finding / winner-only routing): each decision cycle selects
//     the single highest-priority backlogged slot and grants one frame.
//   * BA (Base Architecture / block decisions): each decision cycle orders
//     ALL slots; the resulting *block* is granted in a single link
//     transaction — max-first emits the block highest-priority-first,
//     min-first from the other end of the lane array.  One slot ID is
//     circulated for the winner window adjustment: the block head in
//     max-first mode, the block tail in min-first mode (Section 5.1).
//
// Virtual time (`vtime`) is measured in packet-times: a WR decision cycle
// occupies one packet-time on the link, a block decision cycle occupies
// one packet-time per granted frame.  Request periods are expressed in the
// same unit, so "requested every decision cycle" (Table 3) means
// period = 1 in WR mode and period = N in block mode.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/control_unit.hpp"
#include "hw/fault_hooks.hpp"
#include "hw/fields.hpp"
#include "hw/register_block.hpp"
#include "hw/shuffle.hpp"
#include "hw/trace.hpp"
#include "telemetry/instruments.hpp"

namespace ss::telemetry {
class AuditSession;
class Profiler;
}  // namespace ss::telemetry

namespace ss::hw {

struct ChipConfig {
  unsigned slots = 4;  ///< power of two, 2..32 (5-bit stream IDs)
  ComparisonMode cmp_mode = ComparisonMode::kDwcsFull;
  bool block_mode = false;  ///< BA block decisions vs WR max-finding
  bool min_first = false;   ///< block emission/circulation from the tail
  /// Block-mode grant batching: at most this many block entries are granted
  /// per decision cycle (0 = the whole block, the classic BA behavior).
  /// Because the comparators rank pending slots ahead of idle ones, the
  /// first K pending lanes of the sorted block are exactly the K frames
  /// that K sequential winner-only decisions would grant, so batch_depth=1
  /// reproduces WR's one-winner-per-cycle service order on the block
  /// datapath.  Ignored in WR mode.
  unsigned batch_depth = 0;
  SortSchedule schedule = SortSchedule::kPerfectShuffle;
  /// Section-6 extension: compute-ahead Register Base blocks precompute
  /// both candidate next states under predication, so PRIORITY_UPDATE
  /// commits in a single cycle (timing-only: results are bit-identical).
  bool compute_ahead = false;
  ControlTiming timing{};
  /// Decision-kernel selection for the shuffle network (kAuto = SS_SIMD
  /// env + CPU dispatch; kReference forces the per-pair scalar oracle —
  /// the bench's baseline leg and the differential referee use it).
  simd::KernelChoice kernel = simd::KernelChoice::kAuto;
};

/// One granted frame within a decision cycle.
struct Grant {
  SlotId slot;
  std::uint64_t emit_vtime;  ///< packet-time at which the frame leaves
  bool met_deadline;
};

/// Result of one completed decision cycle.
struct DecisionOutcome {
  bool idle = false;               ///< no slot had a backlogged request
  std::optional<SlotId> circulated;///< ID sent through PRIORITY_UPDATE
  std::vector<Grant> grants;       ///< emission order (size 1 in WR mode)
  /// Block mode: the whole ordered block of backlogged slots this cycle,
  /// in emission order.  A strict superset of `grants` when batch_depth
  /// truncates the grant burst — systems software reads it to size the
  /// next drain pass without another PCI exchange.  Empty in WR mode.
  std::vector<SlotId> block;
  std::vector<SlotId> drops;       ///< droppable slots whose late head was
                                   ///< discarded this cycle (systems
                                   ///< software must drop the host frame)
  std::uint64_t hw_cycles = 0;     ///< hardware cycles this decision took
};

class SchedulerChip {
 public:
  explicit SchedulerChip(const ChipConfig& cfg);

  /// LOAD a stream-slot's configuration (systems software writes the
  /// service constraints into the SRAM partition; the control unit latches
  /// them into the Register Base block).
  void load_slot(SlotId slot, const SlotConfig& cfg);

  /// New request for a slot (arrival-time offset from the Stream
  /// processor).  Defaults the 16-bit arrival stamp to the current vtime.
  void push_request(SlotId slot);
  void push_request(SlotId slot, Arrival arrival);

  /// Fair-queuing mapping: per-packet service tag accompanies the request
  /// (the slot's deadline field tracks the head packet's tag).
  void push_tagged_request(SlotId slot, Deadline tag, Arrival arrival);

  /// Run one complete decision cycle (ticks the FSM until the boundary).
  DecisionOutcome run_decision_cycle();

  /// Allocation-free variant: reuses `out`'s grant/block/drop capacity
  /// across decision cycles.  The hot loops (endsystem drain, bench,
  /// differential campaigns) call this; the by-value overload above wraps
  /// it.  `out` is fully overwritten.
  void run_decision_cycle(DecisionOutcome& out);

  /// Fallible variant: an injected decision-cycle stall fails the attempt
  /// *before* any state mutation — vtime, counters and lane contents are
  /// untouched, so the caller may simply retry.  Returns false on a stall
  /// (out is left unmodified), true with the outcome otherwise.
  [[nodiscard]] bool try_run_decision_cycle(DecisionOutcome& out);

  /// Run `n` decision cycles, discarding the outcomes (counters persist).
  void run_decision_cycles(std::uint64_t n);

  [[nodiscard]] std::uint64_t vtime() const { return vtime_; }
  [[nodiscard]] std::uint64_t hw_cycles() const { return control_.hw_cycles(); }
  [[nodiscard]] std::uint64_t decision_cycles() const {
    return control_.decision_cycles();
  }
  [[nodiscard]] std::uint64_t frames_granted() const { return frames_granted_; }

  [[nodiscard]] const RegisterBlock& slot(SlotId s) const { return slots_[s]; }
  [[nodiscard]] const ChipConfig& config() const { return cfg_; }
  [[nodiscard]] const ControlUnit& control() const { return control_; }

  /// The block produced by the most recent non-idle decision cycle, in
  /// lane order (lane 0 = highest priority).  Empty before the first one.
  /// Gathered lazily from the network's lane registers — the decision hot
  /// path never pays for the AttrWord copy.
  [[nodiscard]] const std::vector<AttrWord>& last_block() const {
    if (last_block_stale_) {
      last_block_.assign(network_.lanes().begin(), network_.lanes().end());
      last_block_stale_ = false;
    }
    return last_block_;
  }

  /// Effective request period for "one request per decision cycle"
  /// workloads: 1 in WR mode, N in block mode (see header comment).
  [[nodiscard]] std::uint16_t period_per_decision_cycle() const {
    return static_cast<std::uint16_t>(cfg_.block_mode ? cfg_.slots : 1);
  }

  /// Attach a decision-cycle tracer (nullptr detaches).  Tracing records
  /// lane contents before and after the SCHEDULE passes plus the grant
  /// and drop vectors — the simulator's waveform view.
  void attach_tracer(Tracer* t) { tracer_ = t; }

  /// Attach live metrics (nullptr detaches).  Decision/grant/drop counts,
  /// FSM phase-cycle breakdown and shuffle-network activity are recorded
  /// per decision cycle; detached cost is one null test per cycle.
  void attach_metrics(telemetry::ChipMetrics* m) { metrics_ = m; }

  /// Attach a fault injector (nullptr detaches).  Only
  /// try_run_decision_cycle consults it.
  void attach_faults(FaultInjector* f) { faults_ = f; }

  /// Attach a decision-audit session (nullptr detaches).  The shuffle
  /// network reports per-comparison rule provenance into the session's
  /// profile and every committed (non-idle) decision cycle either pushes
  /// a full record into the flight-recorder ring (sampled decisions —
  /// the session's DecisionSampler decides) or advances the exact
  /// counters through the cheap lite path.  Observation only: grants,
  /// drops and all register state are unchanged at any sample rate.
  /// Compiled away under -DSS_TELEMETRY=OFF.
  void attach_audit(telemetry::AuditSession* a);

  /// Attach a hot-path profiler (nullptr detaches).  The chip attributes
  /// each decision cycle and its SCHEDULE network passes to the
  /// chip_decision / shuffle_passes stages.  Compiled away under
  /// -DSS_TELEMETRY=OFF.
  void attach_profiler(telemetry::Profiler* p) { profiler_ = p; }

  /// Switching-activity proxy: compare-exchange swaps executed by the
  /// network so far (BA vs WR dynamic-power comparison).
  [[nodiscard]] std::uint64_t network_swaps() const {
    return network_.total_swaps();
  }
  [[nodiscard]] std::uint64_t network_comparisons() const {
    return network_.total_comparisons();
  }

 private:
  void execute_decision(DecisionOutcome& out);

  ChipConfig cfg_;
  std::vector<RegisterBlock> slots_;
  ShuffleNetwork network_;
  ControlUnit control_;
  /// Any slot with deadline semantics (kDwcs / kEdf)?  Fair-queuing and
  /// static-priority slots never take the miss path, so an all-bypass
  /// configuration skips the per-cycle loser scan outright — the
  /// unified-architecture insight (Section 2) applied to the hot loop.
  /// Starts true: an unconfigured slot defaults to kDwcs, and load_slot
  /// recomputes over all slots.
  bool miss_path_needed_ = true;
  /// Inverse lane permutation of the most recent sorted decision
  /// (lane_of_[slot id] = lane index), valid only while the network's lane
  /// registers still hold that decision's state and the ids formed a
  /// permutation.  Lets LOAD republish just the slots whose attribute bus
  /// changed since — in steady state the granted slot, not all N.
  std::uint8_t lane_of_[kMaxSlots] = {};
  bool lane_map_valid_ = false;
  /// Chip-level mirrors of per-slot state, maintained at the mutation call
  /// sites (every Register Base mutation flows through a SchedulerChip
  /// method): bit s of pend_mask_ == slots_[s].backlog() > 0, bit s of
  /// dirty_mask_ == slot s's attribute bus changed since its last publish.
  /// They replace two N-object scans per decision cycle with register
  /// reads — the hardware's wired-OR request lines, kept in software.
  std::uint32_t pend_mask_ = 0;
  std::uint32_t dirty_mask_ = 0xFFFFFFFFu;
  std::uint64_t vtime_ = 0;
  std::uint64_t frames_granted_ = 0;
  mutable std::vector<AttrWord> last_block_;
  mutable bool last_block_stale_ = false;
  // Fair-queuing per-slot tag queues (head tag drives the deadline field).
  // Head-indexed: pop advances a cursor instead of memmoving the vector
  // (the grant path pops one tag per fair-queued frame), with amortized
  // prefix compaction so storage stays proportional to the live queue.
  struct TagFifo {
    std::vector<Deadline> buf;
    std::size_t head = 0;
    [[nodiscard]] bool empty() const { return head == buf.size(); }
    void clear() {
      buf.clear();
      head = 0;
    }
    void push(Deadline d) { buf.push_back(d); }
    Deadline pop() {
      const Deadline d = buf[head++];
      if (head == buf.size() || (head >= 64 && head * 2 >= buf.size())) {
        buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
      return d;
    }
  };
  std::vector<TagFifo> tag_fifos_;
  Tracer* tracer_ = nullptr;
  telemetry::ChipMetrics* metrics_ = nullptr;
  FaultInjector* faults_ = nullptr;
  telemetry::AuditSession* audit_ = nullptr;
  telemetry::Profiler* profiler_ = nullptr;
};

}  // namespace ss::hw
