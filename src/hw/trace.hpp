// trace.hpp — decision-cycle tracing for the scheduler fabric.
//
// A hardware team debugging the real ShareStreams card watched waveforms;
// the simulator's equivalent is a per-decision-cycle trace: the FSM
// boundaries, the attribute words driven onto the lanes, the block after
// the shuffle passes, the circulated ID and the per-slot adjustments.
// The Tracer is optional (zero cost when absent) and bounded (a ring of
// the most recent records) so it can stay attached in long runs.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "hw/fields.hpp"

namespace ss::hw {

struct TraceRecord {
  std::uint64_t decision_cycle = 0;
  std::uint64_t vtime_start = 0;
  bool idle = false;
  std::vector<AttrWord> loaded;     ///< lane contents after LOAD
  std::vector<AttrWord> block;      ///< lane contents after SCHEDULE
  std::optional<SlotId> circulated;
  std::vector<SlotId> grants;       ///< emission order
  std::vector<SlotId> drops;
  std::uint64_t hw_cycles = 0;
};

class Tracer {
 public:
  /// Keep at most `depth` most-recent records (0 = unbounded).
  explicit Tracer(std::size_t depth = 64) : depth_(depth) {}

  void record(TraceRecord r);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const TraceRecord& at(std::size_t i) const {
    return records_[i];
  }
  [[nodiscard]] const TraceRecord& latest() const { return records_.back(); }
  void clear() { records_.clear(); }

  /// Text rendering of one record (the "waveform" line), e.g.:
  ///   #12 vt=48  load[D3:1/4 D5:0/2 ...] -> block[S2 S0 S3 S1] circ=S2
  ///   grants=[S2 S0 S3 S1] drops=[] (13 cyc)
  [[nodiscard]] static std::string render(const TraceRecord& r);

  /// Render the whole retained window.
  [[nodiscard]] std::string render_all() const;

  /// Render the last `n` retained records (0 = all) — the "tail" attached
  /// to divergence reports.
  [[nodiscard]] std::string render_tail(std::size_t n) const;

  /// Chrome trace-event JSON of the retained window: one "decisions"
  /// track of complete events (one per decision cycle, ts = hw-cycle
  /// offset as ns, dur = the cycle's hw_cycles) carrying the grant /
  /// drop / circulation args.  Loadable in Perfetto / chrome://tracing.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  std::size_t depth_;
  std::deque<TraceRecord> records_;
};

}  // namespace ss::hw
