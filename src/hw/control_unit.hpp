// control_unit.hpp — the Control & Steering Logic unit.
//
// Figure 6 of the paper: the unit begins in a LOAD state (configuration and
// initial attributes latched into the Register Base blocks) and then
// alternates between SCHEDULE (log2 N recirculating-shuffle passes) and
// PRIORITY_UPDATE (winner ID circulated, register blocks adjust) states.
// The SRAM interface exchange (arrival-times in, scheduled Stream IDs out)
// can either serialize with the decision loop or be pipelined under it —
// the paper notes "pipelining multiple stream selection decisions is
// crucial to maintain high throughput" (Section 4.2).
//
// Cycle-model calibration (documented in DESIGN.md):
//   * decision latency  = schedule passes + update cycles
//     (what packet-time feasibility is judged on);
//   * sustained cycles per decision additionally includes the SRAM I/O
//     (one arrival-time word per slot in, winner-ID writeback out); with
//     I/O pipelining it becomes max(io, latency).
//   At 4 slots, non-pipelined: 4 + 2 + 3 + 4 = 13 cycles -> 7.69 M
//   decisions/s at 100 MHz, matching the paper's 7.6 M packets/s linecard
//   figure.
#pragma once

#include <cstdint>

namespace ss::hw {

enum class FsmState : std::uint8_t {
  kIdle,      ///< before LOAD / after reset
  kLoad,      ///< latching attributes via the SRAM interface
  kSchedule,  ///< shuffle-exchange passes in flight
  kUpdate,    ///< PRIORITY_UPDATE: circulate winner, adjust registers
  kOutput,    ///< winner/block IDs written back to the SRAM partition
};

struct ControlTiming {
  unsigned load_cycles_per_slot = 1;  ///< SRAM port: one attr word per cycle
  unsigned update_cycles = 3;         ///< circulate + adjust + settle
  unsigned output_cycles = 4;         ///< ID writeback burst
  bool bypass_update = false;         ///< fair-queuing/static: skip UPDATE
  bool pipelined_io = false;          ///< overlap SRAM I/O with the loop
};

/// Pure cycle/FSM bookkeeper: the datapath (SchedulerChip) asks it what to
/// do each hardware cycle.
class ControlUnit {
 public:
  enum class Action : std::uint8_t {
    kLoadCycle,
    kSchedulePass,   ///< run one network pass this cycle
    kUpdateApply,    ///< first UPDATE cycle: apply all register adjustments
    kUpdateSettle,
    kOutputCycle,
    kDecisionDone,   ///< decision cycle boundary (no datapath work)
  };

  ControlUnit(unsigned slots, unsigned schedule_passes, ControlTiming timing);

  /// Advance one hardware cycle and return the datapath action.
  Action tick();

  /// Closed-form fast path: advance the FSM from a decision boundary
  /// (kIdle, or kLoad at phase 0) straight to the UPDATE-apply cycle,
  /// charging exactly the hardware cycles the tick loop would have — the
  /// LOAD burst, every SCHEDULE pass and the apply cycle itself.  The
  /// returned action is always kUpdateApply; the datapath runs the whole
  /// network decision plus register updates at that point (this is what
  /// lets the SIMD stage kernel evaluate all passes in one burst).
  Action advance_to_apply();

  /// Closed-form twin of the remaining tick()s after advance_to_apply():
  /// charges the UPDATE-settle and OUTPUT cycles and closes the decision
  /// boundary.  tick() and the fast-path pair produce bit-identical
  /// hw_cycles / decision_cycles / state traces at every boundary (pinned
  /// by ControlUnitTest.FastPathMatchesTickLoop).
  void finish_decision();

  /// Per-phase cycle charges of one full decision under the current
  /// timing — load, schedule, update, output; sums to the non-idle
  /// decision cost.  Matches the per-action tallies the tick loop yields
  /// (the boundary cycle is accounted to output, the apply cycle to
  /// update — or to output when bypass_update rides it on the writeback).
  struct PhaseCycles {
    unsigned load, sched, upd, outp;
  };
  [[nodiscard]] PhaseCycles phase_cycles() const;

  [[nodiscard]] FsmState state() const { return state_; }
  [[nodiscard]] std::uint64_t hw_cycles() const { return hw_cycles_; }
  [[nodiscard]] std::uint64_t decision_cycles() const {
    return decision_cycles_;
  }

  /// SCHEDULE + PRIORITY_UPDATE cycles: the latency from attributes-ready
  /// to winner-circulated.
  [[nodiscard]] unsigned decision_latency_cycles() const;

  /// Cycles consumed per decision at steady state, including SRAM I/O
  /// (overlapped if pipelined_io).
  [[nodiscard]] unsigned sustained_cycles_per_decision() const;

  [[nodiscard]] const ControlTiming& timing() const { return timing_; }

  /// Area of the Control & Steering block (Section 5.1: 22 slices).
  static constexpr unsigned kSlices = 22;

 private:
  unsigned slots_;
  unsigned passes_;
  ControlTiming timing_;
  FsmState state_ = FsmState::kIdle;
  unsigned phase_ = 0;  ///< cycles spent in the current state
  std::uint64_t hw_cycles_ = 0;
  std::uint64_t decision_cycles_ = 0;
};

}  // namespace ss::hw
