#include "hw/pci.hpp"

namespace ss::hw {

namespace {
std::size_t words_for(std::size_t bytes, unsigned bus_bytes) {
  return (bytes + bus_bytes - 1) / bus_bytes;
}
}  // namespace

Nanos PciModel::pio_write(std::size_t bytes) const {
  const Nanos ns{words_for(bytes, cfg_.bus_bytes) * cfg_.pio_write_ns};
  SS_TELEM(if (metrics_) {
    metrics_->pio_writes->add(1);
    metrics_->bytes->add(bytes);
    metrics_->busy_ns->add(count(ns));
  });
  return ns;
}

Nanos PciModel::pio_read(std::size_t bytes) const {
  const Nanos ns{words_for(bytes, cfg_.bus_bytes) * cfg_.pio_read_ns};
  SS_TELEM(if (metrics_) {
    metrics_->pio_reads->add(1);
    metrics_->bytes->add(bytes);
    metrics_->busy_ns->add(count(ns));
  });
  return ns;
}

Nanos PciModel::dma_transfer(std::size_t bytes) const {
  const double stream_ns =
      static_cast<double>(bytes) /
      (burst_bytes_per_ns() * cfg_.dma_efficiency);
  const Nanos ns{cfg_.dma_setup_ns + static_cast<std::uint64_t>(stream_ns)};
  SS_TELEM(if (metrics_) {
    metrics_->dma_transfers->add(1);
    metrics_->bytes->add(bytes);
    metrics_->busy_ns->add(count(ns));
  });
  return ns;
}

FallibleNanos PciModel::try_pio_write(std::size_t bytes) const {
  if (faults_) {
    const FaultDecision d = faults_->on_transaction(FaultSite::kPciWrite);
    if (d.fault) return {false, d.penalty};
  }
  return {true, pio_write(bytes)};
}

FallibleNanos PciModel::try_pio_read(std::size_t bytes) const {
  if (faults_) {
    const FaultDecision d = faults_->on_transaction(FaultSite::kPciRead);
    if (d.fault) return {false, d.penalty};
  }
  return {true, pio_read(bytes)};
}

FallibleNanos PciModel::try_dma_transfer(std::size_t bytes) const {
  if (faults_) {
    const FaultDecision d = faults_->on_transaction(FaultSite::kPciDma);
    if (d.fault) return {false, d.penalty};
  }
  return {true, dma_transfer(bytes)};
}

Nanos PciModel::per_packet_pio_exchange(unsigned batch) const {
  if (batch == 0) batch = 1;
  // `batch` arrival times (2 bytes each) pushed, `batch` Stream IDs
  // (1 byte each, 5 bits used) read back.
  const std::uint64_t push = count(pio_write(std::size_t{batch} * 2));
  const std::uint64_t pull = count(pio_read(std::size_t{batch} * 1));
  return Nanos{(push + pull) / batch};
}

}  // namespace ss::hw
