#include "hw/pci.hpp"

namespace ss::hw {

namespace {
std::size_t words_for(std::size_t bytes, unsigned bus_bytes) {
  return (bytes + bus_bytes - 1) / bus_bytes;
}
}  // namespace

Nanos PciModel::pio_write(std::size_t bytes) const {
  return Nanos{words_for(bytes, cfg_.bus_bytes) * cfg_.pio_write_ns};
}

Nanos PciModel::pio_read(std::size_t bytes) const {
  return Nanos{words_for(bytes, cfg_.bus_bytes) * cfg_.pio_read_ns};
}

Nanos PciModel::dma_transfer(std::size_t bytes) const {
  const double stream_ns =
      static_cast<double>(bytes) /
      (burst_bytes_per_ns() * cfg_.dma_efficiency);
  return Nanos{cfg_.dma_setup_ns + static_cast<std::uint64_t>(stream_ns)};
}

Nanos PciModel::per_packet_pio_exchange(unsigned batch) const {
  if (batch == 0) batch = 1;
  // `batch` arrival times (2 bytes each) pushed, `batch` Stream IDs
  // (1 byte each, 5 bits used) read back.
  const std::uint64_t push = count(pio_write(std::size_t{batch} * 2));
  const std::uint64_t pull = count(pio_read(std::size_t{batch} * 1));
  return Nanos{(push + pull) / batch};
}

}  // namespace ss::hw
