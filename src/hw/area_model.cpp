#include "hw/area_model.hpp"

#include <algorithm>
#include <cmath>

#include "hw/control_unit.hpp"
#include "hw/decision_block.hpp"
#include "hw/register_block.hpp"
#include "util/bitops.hpp"

namespace ss::hw {

const std::vector<Device>& virtex1_devices() {
  // Slice counts: CLB rows x cols x 2 slices/CLB (Virtex-I datasheet).
  static const std::vector<Device> kDevices = {
      {"XCV50", FpgaFamily::kVirtexI, 16 * 24 * 2},
      {"XCV100", FpgaFamily::kVirtexI, 20 * 30 * 2},
      {"XCV150", FpgaFamily::kVirtexI, 24 * 36 * 2},
      {"XCV200", FpgaFamily::kVirtexI, 28 * 42 * 2},
      {"XCV300", FpgaFamily::kVirtexI, 32 * 48 * 2},
      {"XCV400", FpgaFamily::kVirtexI, 40 * 60 * 2},
      {"XCV600", FpgaFamily::kVirtexI, 48 * 72 * 2},
      {"XCV800", FpgaFamily::kVirtexI, 56 * 84 * 2},
      {"XCV1000", FpgaFamily::kVirtexI, 64 * 96 * 2},
  };
  return kDevices;
}

const std::vector<Device>& virtex2_devices() {
  // XC2V slice counts (CLB rows x cols x 4 slices/CLB, Virtex-II family).
  static const std::vector<Device> kDevices = {
      {"XC2V250", FpgaFamily::kVirtexII, 1536},
      {"XC2V500", FpgaFamily::kVirtexII, 3072},
      {"XC2V1000", FpgaFamily::kVirtexII, 5120},
      {"XC2V1500", FpgaFamily::kVirtexII, 7680},
      {"XC2V2000", FpgaFamily::kVirtexII, 10752},
      {"XC2V3000", FpgaFamily::kVirtexII, 14336},
      {"XC2V6000", FpgaFamily::kVirtexII, 33792},
  };
  return kDevices;
}

AreaModel::AreaModel(FpgaFamily family) : family_(family) {}

AreaBreakdown AreaModel::area(unsigned slots, ArchConfig cfg) const {
  AreaBreakdown b{};
  b.control_slices = ControlUnit::kSlices;
  b.register_slices =
      slots * (kRegisterBlockSlices +
               (compute_ahead_ ? kComputeAheadSlicesPerSlot : 0));
  // Virtex-II's hard 18x18 multipliers absorb the window-constraint
  // cross-products, trimming the fabric portion of each Decision block
  // (Section 6: "use of hard multipliers in the Xilinx Virtex II
  // architecture to improve performance").
  const unsigned decision_slices =
      family_ == FpgaFamily::kVirtexII ? kDecisionBlockSlices - 60
                                       : kDecisionBlockSlices;
  b.decision_slices = (slots / 2) * decision_slices;
  // Shuffle wiring and pass-through CLBs grow linearly with slot count
  // (Section 5.1: "the area of the shuffle-network wires and pass-through
  // CLBs is dependent on the stream-slot count ... our architecture grows
  // linearly").  BA routes loser buses as well as winner buses, costing a
  // few extra pass-through slices per slot; this keeps BA "almost the same
  // area" as WR, as the paper observes.
  const unsigned per_slot =
      (cfg == ArchConfig::kBlockArchitecture) ? 10 : 7;
  b.routing_slices = slots * per_slot;
  return b;
}

double AreaModel::clock_mhz(unsigned slots, ArchConfig cfg) const {
  const double k = static_cast<double>(log2_ceil(slots));
  // WR baseline: gentle logarithmic degradation as the winner-bus fanout
  // and steering muxes deepen.  Calibrated so the 4..32-slot span stays
  // within the RC1000's 100 MHz ceiling and varies little (paper: "the WR
  // architecture shows lesser clock-rate variation ... than BA").
  const double wr = 100.0 - 3.2 * k;  // 4:93.6  8:90.4  16:87.2  32:84.0
  double mhz = wr;
  if (cfg == ArchConfig::kBlockArchitecture) {
    // BA routes winners AND losers: the doubled bus count congests mid-size
    // placements most (at 4 slots the design is tiny; by 32 slots the
    // placer spreads logic across the die and the relative penalty
    // shrinks).  Calibrated to the paper: ~6 % at 4, ~20 % at 8 and 16,
    // ~10 % at 32 slots.
    constexpr double kPenalty[] = {0.02, 0.04, 0.06, 0.20, 0.19, 0.10};
    const auto idx = static_cast<std::size_t>(
        std::min<double>(k, std::size(kPenalty) - 1));
    mhz = wr * (1.0 - kPenalty[idx]);
  }
  if (family_ == FpgaFamily::kVirtexII) {
    // Future-work target (Section 6): Virtex-II's faster fabric and hard
    // multipliers for the window-constraint cross-products.
    mhz *= 1.5;
  }
  return mhz;
}

const Device* AreaModel::smallest_fit(unsigned slots, ArchConfig cfg) const {
  const unsigned need = area(slots, cfg).total();
  const auto& devices = family_ == FpgaFamily::kVirtexII
                            ? virtex2_devices()
                            : virtex1_devices();
  for (const Device& d : devices) {
    if (d.slices >= need) return &d;
  }
  return nullptr;
}

double AreaModel::utilization(unsigned slots, ArchConfig cfg,
                              const Device& dev) const {
  return static_cast<double>(area(slots, cfg).total()) /
         static_cast<double>(dev.slices);
}

}  // namespace ss::hw
