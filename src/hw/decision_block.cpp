#include "hw/decision_block.hpp"

#include <cstdint>

namespace ss::hw {
namespace {

/// Cross-multiplied window-constraint comparison: W_a = xa/ya vs
/// W_b = xb/yb without division, exactly as an 8x8 multiplier pair in the
/// Decision block would compute it.  A zero denominator is treated as an
/// infinite constraint (fully loss-tolerant) so an idle/misconfigured slot
/// never outranks a constrained one; the register-block update logic keeps
/// live denominators non-zero.
struct WcCmp {
  std::uint32_t lhs, rhs;
};
WcCmp cross(const AttrWord& a, const AttrWord& b) {
  return {static_cast<std::uint32_t>(a.loss_num) * b.loss_den,
          static_cast<std::uint32_t>(b.loss_num) * a.loss_den};
}

DecisionResult fcfs(const AttrWord& a, const AttrWord& b) {
  if (a.arrival != b.arrival) {
    return {a.arrival < b.arrival, Rule::kFcfsArrival};
  }
  return {a.id <= b.id, Rule::kIdTieBreak};
}

}  // namespace

DecisionResult decide(const AttrWord& a, const AttrWord& b,
                      ComparisonMode mode) {
  // A slot without a backlogged request always loses: the muxes gate idle
  // slots out of contention regardless of stale register contents.
  if (a.pending != b.pending) return {a.pending, Rule::kPendingOnly};

  switch (mode) {
    case ComparisonMode::kTagOnly:
      if (a.deadline != b.deadline) {
        return {a.deadline < b.deadline, Rule::kDeadline};
      }
      return fcfs(a, b);

    case ComparisonMode::kStatic:
      // Static priority rides in the loss-denominator field with all
      // deadlines pinned equal; higher value = higher priority (Table-2
      // rule 3 semantics, so the same datapath serves both modes).
      if (a.loss_den != b.loss_den) {
        return {a.loss_den > b.loss_den, Rule::kZeroDenominator};
      }
      return fcfs(a, b);

    case ComparisonMode::kDwcsFull: {
      // Rule 1: earliest deadline first.
      if (a.deadline != b.deadline) {
        return {a.deadline < b.deadline, Rule::kDeadline};
      }
      const bool a_zero = (a.loss_num == 0);
      const bool b_zero = (b.loss_num == 0);
      if (a_zero && b_zero) {
        // Rule 3: equal deadlines, zero window-constraints — highest
        // denominator first.
        if (a.loss_den != b.loss_den) {
          return {a.loss_den > b.loss_den, Rule::kZeroDenominator};
        }
        return fcfs(a, b);
      }
      // Rule 2: lowest window-constraint first.  A zero constraint is the
      // lowest possible, so a zero-x' stream outranks any non-zero one;
      // the cross-multiplication yields exactly that (0 * y < x * y).
      const auto [lhs, rhs] = cross(a, b);
      if (lhs != rhs) return {lhs < rhs, Rule::kWindowConstraint};
      // Rule 4: equal non-zero constraints — lowest numerator first.
      if (a.loss_num != b.loss_num) {
        return {a.loss_num < b.loss_num, Rule::kNumerator};
      }
      // Rule 5: all other cases — FCFS.
      return fcfs(a, b);
    }
  }
  return fcfs(a, b);  // unreachable; keeps -Wreturn-type quiet
}

Ordered order(const AttrWord& a, const AttrWord& b, ComparisonMode mode) {
  const DecisionResult r = decide(a, b, mode);
  return r.a_wins ? Ordered{a, b} : Ordered{b, a};
}

}  // namespace ss::hw
