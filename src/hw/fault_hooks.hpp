// fault_hooks.hpp — the hardware layer's fault-injection seam.
//
// The endsystem realization leans on fragile shared resources: the
// 32-bit/33 MHz PCI path, the arbitrated SRAM bank whose ownership switch
// is "generally the bottleneck for high-performance PCI transfers"
// (Section 5.2), and the FPGA decision datapath itself.  The models in
// this directory are deterministic and infallible by default; an attached
// FaultInjector makes each transaction *fallible* so systems software can
// be exercised against transfer timeouts, arbitration stalls, detected
// bit-flips and decision-cycle hangs.
//
// The interface is abstract so the hw layer stays free of any dependency
// on the recovery subsystem: src/robust/ implements it (a seeded, fully
// deterministic FaultPlan), hw merely consults it.  A model with no
// injector attached pays one null test per transaction.
#pragma once

#include <cstdint>

#include "util/sim_time.hpp"

namespace ss::hw {

/// Where in the hardware a transaction is attempted.
enum class FaultSite : std::uint8_t {
  kPciWrite,     ///< programmed-I/O posted write (arrival-offset push)
  kPciRead,      ///< programmed-I/O blocking read (Stream-ID pull)
  kPciDma,       ///< card-DMA burst
  kSramAcquire,  ///< bank ownership arbitration
  kSramData,     ///< bank data read (single-event upsets on the array)
  kChipDecision, ///< one scheduler decision cycle
};

/// Verdict for one transaction attempt.
struct FaultDecision {
  bool fault = false;  ///< the attempt fails (timeout / stall / parity)
  Nanos penalty{0};    ///< modeled time lost before the failure is seen
  unsigned bit = 0;    ///< kSramData: which bit of the word was flipped
};

/// Deterministic fault source consulted once per transaction attempt.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultDecision on_transaction(FaultSite site) = 0;
};

/// Result of a fallible timed transaction: `ns` is the time the attempt
/// occupied the resource whether or not it succeeded (a timed-out PCI
/// transfer still held the bus for its timeout).
struct FallibleNanos {
  bool ok = true;
  Nanos ns{0};
};

}  // namespace ss::hw
