// simd_kernel.hpp — branch-free vector evaluation of the Table-2 cascade.
//
// The paper's Decision blocks resolve a whole shuffle stage of pairwise
// comparisons in ONE hardware cycle because all N/2 comparators are
// physically parallel.  This kernel reproduces that width in software:
// the per-slot attributes live in the SoA register file (hw::AttrSoA),
// get widened into 16-bit lanes (LaneRegs), and one compare-exchange pass
// of the shuffle schedule executes as a short burst of AVX2 instructions
// — every rule of Table 2 evaluated concurrently as lane masks, the
// verdict selected by mask blending, never a branch per pair.
//
// Three implementations share the exact decision semantics of
// hw::decide() (the scalar oracle stays the differential referee):
//   * kAvx512 — 32 lanes per __m512i at the full 32-slot width: one
//     vpermw partner shuffle per field, cascade rules straight into
//     k-masks.  Compiled only when the toolchain supports -mavx512bw and
//     selected only when the CPU reports AVX-512BW at runtime.
//   * kAvx2 — 16 lanes per __m256i; a 32-slot butterfly pass is ~2 vector
//     bursts.  Compiled only when the toolchain supports -mavx2 and
//     selected only when the CPU reports AVX2 at runtime.
//   * kSwar — portable branch-free scalar fallback (mask-select instead
//     of branches), used for non-x86 hosts, non-butterfly pairings
//     (odd-even transposition) and sub-vector slot counts.
// kReference keeps the original per-pair hw::decide() path; it is what
// SS_SIMD=REF forces and what the differential campaigns referee against.
//
// Runtime selection: SS_SIMD environment variable —
//   unset / AUTO  -> widest kernel this binary AND CPU support
//                    (AVX-512BW, then AVX2, then SWAR);
//   OFF / SWAR    -> forced branch-free scalar fallback;
//   REF           -> forced per-pair reference comparator (pre-SIMD path);
//   AVX512        -> AVX-512 if available, degrading to AVX2 then SWAR;
//   ON / AVX2     -> AVX2 if available, SWAR otherwise (never upgrades —
//                    the differential legs pin the exact kernel they ask
//                    for).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/decision_block.hpp"
#include "hw/fields.hpp"

namespace ss::hw::simd {

/// Concrete kernel implementations (post-dispatch).
enum class Kernel : std::uint8_t { kReference, kSwar, kAvx2, kAvx512 };

/// Configuration-time request (ChipConfig / ShuffleNetwork constructor).
enum class KernelChoice : std::uint8_t {
  kAuto, kReference, kSwar, kAvx2, kAvx512
};

[[nodiscard]] const char* kernel_name(Kernel k);

/// True iff the binary carries the AVX2 kernel AND this CPU executes it.
[[nodiscard]] bool avx2_supported();

/// True iff the binary carries the AVX-512 kernel AND this CPU executes it.
[[nodiscard]] bool avx512_supported();

/// Parse an SS_SIMD-style value ("OFF", "SWAR", "REF", "AVX2", "AUTO",
/// case-insensitive; nullptr/empty = AUTO).  Exposed for tests.
[[nodiscard]] KernelChoice parse_choice(const char* value);

/// Resolve a choice against CPU support (kAuto/kAvx2 degrade to kSwar
/// when AVX2 is unavailable).
[[nodiscard]] Kernel resolve(KernelChoice c);

/// The process default: SS_SIMD env + CPU detection, computed once.
[[nodiscard]] Kernel default_kernel();

/// Vector lane registers: every attribute field widened to one 16-bit
/// lane per slot so a 16-slot field fits one __m256i.  `pend` lanes are
/// saturated masks (0 / 0xFFFF) so pendingness composes with the other
/// rule masks without a widening step per pass.
struct LaneRegs {
  alignas(32) std::uint16_t deadline[kMaxSlots] = {};
  alignas(32) std::uint16_t arrival[kMaxSlots] = {};
  alignas(32) std::uint16_t loss_num[kMaxSlots] = {};
  alignas(32) std::uint16_t loss_den[kMaxSlots] = {};
  alignas(32) std::uint16_t id[kMaxSlots] = {};
  alignas(32) std::uint16_t pend[kMaxSlots] = {};

  /// Widen the SoA register file into the lane registers.
  void load(const AttrSoA& soa, unsigned n);
  /// Gather one (possibly permuted) lane back into the AoS view.
  [[nodiscard]] AttrWord get(unsigned lane) const;
};

/// One pass of a schedule, pre-lowered for vector execution by the
/// steering logic (ShuffleNetwork::build_schedule).
struct PassPlan {
  /// Butterfly passes pair lane i with lane i^stride — every perfect-
  /// shuffle and bitonic pass has this shape and vectorizes; odd-even
  /// transposition does not and runs on the SWAR fallback.
  bool butterfly = false;
  unsigned stride = 0;
  /// Per-lane comparator direction, pair-symmetric (0 / 0xFFFF).
  alignas(32) std::uint16_t desc[kMaxSlots] = {};
  /// The same directions as a lane bitmask (bit i == desc[i] != 0) — the
  /// k-mask form the AVX-512 kernel consumes without a per-pass load.
  std::uint32_t desc_bits = 0;
  /// Generic pairing, always populated (the SWAR path and non-butterfly
  /// schedules iterate it).
  struct Pair {
    std::uint16_t lo, hi;
    std::uint16_t desc;  ///< 0 or 1
  };
  std::vector<Pair> pairs;
};

struct KernelStats {
  std::uint64_t swaps = 0;          ///< compare-exchanges that swapped
  std::uint64_t pending_pairs = 0;  ///< pairs with >=1 pending operand
};

/// Branch-free scalar (SWAR) decision for one pair: bit-identical to
/// hw::decide(a, b, mode).a_wins.  Exposed for the crosscheck tests.
[[nodiscard]] bool pair_a_wins_swar(const AttrWord& a, const AttrWord& b,
                                    ComparisonMode mode);

/// Run every pass of `plan` over the lane registers with kernel `k`
/// (kAvx2 falls back to SWAR per pass where a pass is not vectorizable).
/// Counter semantics match the scalar ShuffleNetwork::step() exactly.
KernelStats run_passes(LaneRegs& regs, unsigned n,
                       std::span<const PassPlan> plan, ComparisonMode mode,
                       Kernel k);

}  // namespace ss::hw::simd
