// decision_block_rtl.hpp — signal-level model of the Decision block.
//
// `decision_block.cpp` states Table 2 behaviourally (nested ifs).  The
// real Figure-5 hardware evaluates EVERY rule concurrently as flat
// combinational sub-signals — magnitude comparators, equality comparators,
// two 8x8 multipliers — and a priority-encoded mux selects the first
// asserted rule's verdict.  This file models that structure explicitly:
// each sub-signal is computed unconditionally (as gates would), then the
// selection logic is a pure priority encoder over the rule-valid bits.
//
// Purpose: structural cross-validation.  `tests/rtl_equivalence_test.cpp`
// proves the flat signal-level network computes the identical function to
// the behavioural cascade over exhaustive/randomized inputs — the kind of
// implementation-vs-specification check a hardware team runs before
// synthesis, reproduced here in the simulator.
#pragma once

#include <cstdint>

#include "hw/decision_block.hpp"
#include "hw/fields.hpp"

namespace ss::hw::rtl {

/// Every intermediate wire of the Figure-5 datapath, exposed so tests can
/// assert sub-signal properties (e.g. "exactly one rule_valid bit is the
/// first asserted", "the multiplier outputs are 16-bit products").
struct DecisionSignals {
  // 16-bit serial magnitude comparators on the deadline bus.
  bool dl_a_earlier = false;
  bool dl_b_earlier = false;
  bool dl_equal = false;
  // 8x8 multipliers for the window-constraint cross products.
  std::uint16_t cross_ab = 0;  ///< x_a * y_b
  std::uint16_t cross_ba = 0;  ///< x_b * y_a
  // zero detectors on the loss numerators.
  bool xa_zero = false;
  bool xb_zero = false;
  // arrival-time serial comparator.
  bool arr_a_earlier = false;
  bool arr_b_earlier = false;
  // pending gating.
  bool only_a_pending = false;
  bool only_b_pending = false;
  // rule-valid bits in priority-encoder order (rule fires = its guard
  // holds AND it decides, i.e. its operands are unequal).
  bool r_pending = false;
  bool r1_deadline = false;
  bool r2_constraint = false;
  bool r3_denominator = false;
  bool r4_numerator = false;
  bool r5_arrival = false;
  // final verdict
  bool a_wins = false;
};

/// Evaluate the full signal network for one operand pair in kDwcsFull
/// mode (the mode with every sub-circuit active).
[[nodiscard]] DecisionSignals evaluate(const AttrWord& a, const AttrWord& b);

/// The mux output alone (what leaves the block).
[[nodiscard]] bool a_wins(const AttrWord& a, const AttrWord& b);

}  // namespace ss::hw::rtl
