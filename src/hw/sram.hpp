// sram.hpp — on-card memory models.
//
// Two memory systems appear in the paper's realizations:
//
//   * Endsystem (Celoxica RC1000): an 8 MB SRAM organised as banks, each
//     accessible by EITHER the host/PCI peer OR the FPGA at a time, with
//     firmware arbitration.  "The SRAM bank ... needs to switch ownership
//     between FPGA and Stream processor each time a transfer is made,
//     which is generally the bottleneck for high-performance PCI
//     transfers" (Section 5.2) — so the ownership-switch cost is a
//     first-class parameter here.
//   * Linecard (Figure 2): dual-ported SRAM between the switch fabric and
//     the scheduler; both sides access concurrently, partitioned into an
//     arrival-time region and a Stream-ID region.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "hw/fault_hooks.hpp"
#include "telemetry/instruments.hpp"
#include "util/sim_time.hpp"

namespace ss::hw {

enum class BankOwner : std::uint8_t { kHost, kFpga };

/// One arbitrated SRAM bank (word-addressable, 32-bit words).
class SramBank {
 public:
  SramBank(std::size_t words, Nanos ownership_switch_cost);

  /// Request ownership for `who`.  Returns the arbitration latency paid
  /// (zero if `who` already owns the bank).  Counts switches.
  [[nodiscard]] Nanos acquire(BankOwner who);

  [[nodiscard]] BankOwner owner() const { return owner_; }
  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  [[nodiscard]] std::size_t size_words() const { return mem_.size(); }

  /// Accesses check ownership: the firmware gates the address bus, so a
  /// non-owner access is a programming error (throws).
  void write(BankOwner who, std::size_t addr, std::uint32_t value);
  [[nodiscard]] std::uint32_t read(BankOwner who, std::size_t addr) const;

  /// Attach live metrics (nullptr detaches): ownership switches and the
  /// arbitration stall time they cost — "generally the bottleneck for
  /// high-performance PCI transfers" (Section 5.2), now observable.
  void attach_metrics(telemetry::SramMetrics* m) { metrics_ = m; }

  /// Attach a fault injector (nullptr detaches).  Only try_acquire and
  /// read_checked consult it; the infallible paths are unchanged.
  void attach_faults(FaultInjector* f) { faults_ = f; }

  /// Fallible arbitration: the firmware arbiter may stall without
  /// switching ownership (the requester pays the penalty and must retry).
  /// On success `ns` is the ordinary switch cost (zero if already owner).
  [[nodiscard]] FallibleNanos try_acquire(BankOwner who);

  /// Parity-checked read: an injected single-event upset flips one bit of
  /// the value *in flight*; the per-word parity bit catches it, so the
  /// caller sees ok=false and retries.  The stored array is never
  /// corrupted — the transient-SEU model, not stuck-at faults.
  struct CheckedRead {
    bool ok = true;
    std::uint32_t value = 0;
  };
  [[nodiscard]] CheckedRead read_checked(BankOwner who,
                                         std::size_t addr) const;

 private:
  void check(BankOwner who, std::size_t addr) const;
  std::vector<std::uint32_t> mem_;
  BankOwner owner_ = BankOwner::kHost;
  Nanos switch_cost_;
  std::uint64_t switches_ = 0;
  telemetry::SramMetrics* metrics_ = nullptr;
  FaultInjector* faults_ = nullptr;
};

/// The RC1000's banked SRAM: independent banks so the Stream processor can
/// fill one while the scheduler drains another ("providing concurrent
/// accesses to the SRAM bank for the Stream processor and FPGA are crucial
/// to providing high-performance").
class BankedSram {
 public:
  BankedSram(unsigned banks, std::size_t words_per_bank,
             Nanos ownership_switch_cost);

  [[nodiscard]] SramBank& bank(unsigned i) { return banks_.at(i); }
  [[nodiscard]] const SramBank& bank(unsigned i) const { return banks_.at(i); }
  [[nodiscard]] unsigned bank_count() const {
    return static_cast<unsigned>(banks_.size());
  }
  [[nodiscard]] std::uint64_t total_switches() const;

 private:
  std::vector<SramBank> banks_;
};

/// Dual-ported SRAM for the linecard realization: both ports access
/// concurrently, no arbitration.  Partitioned into named regions.
class DualPortedSram {
 public:
  explicit DualPortedSram(std::size_t words);

  void write(std::size_t addr, std::uint32_t value);
  [[nodiscard]] std::uint32_t read(std::size_t addr) const;

  /// Region bounds for the arrival-time and Stream-ID partitions (the
  /// linecard writes arrivals into the first, the scheduler writes winner
  /// IDs into the second).
  [[nodiscard]] std::size_t arrival_base() const { return 0; }
  [[nodiscard]] std::size_t id_base() const { return mem_.size() / 2; }
  [[nodiscard]] std::size_t size_words() const { return mem_.size(); }

 private:
  std::vector<std::uint32_t> mem_;
};

}  // namespace ss::hw
