// simd_kernel_avx2.cpp — the AVX2 compare-exchange passes.
//
// Compiled with -mavx2 in its own translation unit; callers reach it only
// through simd::run_passes after the runtime CPU check, so a non-AVX2
// host never executes a byte of this file.
//
// A butterfly pass over n slots (n = 16 or 32) runs as one or two
// 16-lane vector bursts.  Each field of the pair's operands is
// materialized pair-symmetrically: A = the lower lane's value on BOTH
// lanes of the pair, B = the upper lane's value on both, so the computed
// a_wins mask is identical across a pair and the swap blend routes
// winner-to-lower-lane exactly like the scalar compare-exchange.  The
// Table-2 cascade is evaluated lowest-priority rule first, each
// higher-priority rule blending its verdict over the accumulator where
// its guard mask holds — the branch-free dual of the scalar
// priority-encoded mux in decision_block_rtl.cpp.
//
// Two entry points share one pass body:
//   * run_plan_avx2 — the hot path.  When EVERY pass of the schedule is
//     a butterfly (bitonic, perfect shuffle), the whole plan executes
//     register-resident: the 6 field vectors are loaded once, all passes
//     run in ymm registers, and the lanes are stored once at the end.
//     Swap/pending tallies accumulate in vector counters and reduce once.
//     This mirrors the paper's chip, where a recirculating stage never
//     writes attributes back to the register file between passes.
//   * run_pass_avx2 — single-pass fallback for mixed schedules (odd-even
//     transposition alternates butterfly and non-butterfly phases), with
//     a full load/store round-trip per call.
#include "hw/simd_kernel.hpp"

#if defined(SS_HAVE_AVX2)

#include <immintrin.h>

#include <bit>

namespace ss::hw::simd::detail {
namespace {

// Partner lane i^stride within one 16-lane vector.
inline __m256i partner_shuffle(__m256i v, unsigned stride) {
  switch (stride) {
    case 1:
      return _mm256_shufflehi_epi16(_mm256_shufflelo_epi16(v, 0xB1), 0xB1);
    case 2:
      return _mm256_shuffle_epi32(v, 0xB1);
    case 4:
      return _mm256_shuffle_epi32(v, 0x4E);
    case 8:
      return _mm256_permute4x64_epi64(v, 0x4E);
    default:
      return v;
  }
}

// Lane mask: 0xFFFF where (lane_index & stride) != 0 (the pair's upper
// lane).  The pattern repeats every 16 lanes for stride < 16, so each
// mask is a broadcast constant — no runtime construction.
inline __m256i hi_lane_mask(unsigned stride) {
  switch (stride) {
    case 1:
      return _mm256_set1_epi32(static_cast<int>(0xFFFF0000u));
    case 2:
      return _mm256_set1_epi64x(
          static_cast<long long>(0xFFFFFFFF00000000ull));
    case 4:
      return _mm256_set_epi64x(-1, 0, -1, 0);
    default:  // stride 8
      return _mm256_set_epi64x(-1, -1, 0, 0);
  }
}

inline __m256i blend(__m256i f, __m256i t, __m256i mask) {
  return _mm256_blendv_epi8(f, t, mask);
}

inline __m256i neq16(__m256i a, __m256i b) {
  return _mm256_xor_si256(_mm256_cmpeq_epi16(a, b),
                          _mm256_set1_epi8(char(-1)));
}

// Wrap-aware 16-bit less-than per lane, lower-raw-wins at the antipode —
// the vector twin of Serial<16>::operator< and serial16_less_bf.
inline __m256i serial_less16(__m256i a, __m256i b) {
  const __m256i d = _mm256_sub_epi16(b, a);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i msb = _mm256_set1_epi16(static_cast<short>(0x8000u));
  const __m256i lower = _mm256_cmpgt_epi16(d, zero);  // d in [1, 0x7FFF]
  const __m256i anti = _mm256_and_si256(
      _mm256_cmpeq_epi16(d, msb),
      _mm256_cmpeq_epi16(_mm256_and_si256(a, msb), zero));
  return _mm256_or_si256(lower, anti);
}

// Unsigned 16-bit less-than (sign-bias then signed compare); used for the
// cross-multiplied window constraints, whose products reach 65025.
inline __m256i ult16(__m256i a, __m256i b) {
  const __m256i bias = _mm256_set1_epi16(static_cast<short>(0x8000u));
  return _mm256_cmpgt_epi16(_mm256_xor_si256(b, bias),
                            _mm256_xor_si256(a, bias));
}

enum Field { kDl, kNu, kDe, kAr, kId, kPd, kFields };

inline __m256i cascade(const __m256i a[kFields], const __m256i b[kFields],
                       ComparisonMode mode) {
  const __m256i ones = _mm256_set1_epi8(char(-1));
  const __m256i zero = _mm256_setzero_si256();
  // FCFS floor: id tie-break (a.id <= b.id), then distinct arrivals.
  __m256i aw = _mm256_xor_si256(_mm256_cmpgt_epi16(a[kId], b[kId]), ones);
  aw = blend(aw, serial_less16(a[kAr], b[kAr]), neq16(a[kAr], b[kAr]));
  switch (mode) {
    case ComparisonMode::kDwcsFull: {
      // Rule 4: lowest numerator (loss fields are <= 255, signed cmp ok).
      aw = blend(aw, _mm256_cmpgt_epi16(b[kNu], a[kNu]),
                 neq16(a[kNu], b[kNu]));
      // Rule 2: cross-multiplied window constraints.
      const __m256i lhs = _mm256_mullo_epi16(a[kNu], b[kDe]);
      const __m256i rhs = _mm256_mullo_epi16(b[kNu], a[kDe]);
      aw = blend(aw, ult16(lhs, rhs), neq16(lhs, rhs));
      // Rule 3: both numerators zero — highest denominator.
      const __m256i both_zero =
          _mm256_and_si256(_mm256_cmpeq_epi16(a[kNu], zero),
                           _mm256_cmpeq_epi16(b[kNu], zero));
      aw = blend(aw, _mm256_cmpgt_epi16(a[kDe], b[kDe]),
                 _mm256_and_si256(both_zero, neq16(a[kDe], b[kDe])));
      // Rule 1: earliest deadline.
      aw = blend(aw, serial_less16(a[kDl], b[kDl]), neq16(a[kDl], b[kDl]));
      break;
    }
    case ComparisonMode::kTagOnly:
      aw = blend(aw, serial_less16(a[kDl], b[kDl]), neq16(a[kDl], b[kDl]));
      break;
    case ComparisonMode::kStatic:
      aw = blend(aw, _mm256_cmpgt_epi16(a[kDe], b[kDe]),
                 neq16(a[kDe], b[kDe]));
      break;
  }
  // Pending-only rule overrides everything where exactly one side pends.
  aw = blend(aw, a[kPd], _mm256_xor_si256(a[kPd], b[kPd]));
  return aw;
}

// Horizontal sum of 8 x i32.
inline std::uint32_t hsum_epi32(__m256i x) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(x),
                            _mm256_extracti128_si256(x, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
}

}  // namespace

bool run_plan_avx2(LaneRegs& r, unsigned n, std::span<const PassPlan> plan,
                   ComparisonMode mode, KernelStats& st) {
  if (n != 16 && n != 32) return false;
  for (const PassPlan& pp : plan) {
    if (!pp.butterfly || pp.stride > n / 2) return false;
  }
  const unsigned nv = n / 16;
  std::uint16_t* const fields[kFields] = {r.deadline, r.loss_num, r.loss_den,
                                          r.arrival,  r.id,       r.pend};
  const __m256i ones = _mm256_set1_epi8(char(-1));
  const __m256i zero = _mm256_setzero_si256();

  // Load the whole lane file once; every pass below runs on registers.
  __m256i self[2][kFields];
  for (unsigned f = 0; f < kFields; ++f) {
    for (unsigned v = 0; v < nv; ++v) {
      self[v][f] = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(fields[f] + 16 * v));
    }
  }

  // Per-lane tallies: each swapped pair raises its two lanes, each pair
  // with a pending operand likewise — the final sums halve back to pair
  // counts.  Subtracting a 0/0xFFFF mask increments saturated lanes
  // (0xFFFF == -1 in epi16); bounded by the pass count, far from wrap.
  __m256i swap_acc = zero;
  __m256i pend_acc = zero;

  for (const PassPlan& pp : plan) {
    const unsigned stride = pp.stride;
    // Registered comparator inputs: capture every partner before writing
    // any result (stride 16 pairs span both vectors).
    __m256i partner[2][kFields];
    __m256i hi[2];
    if (stride == 16) {
      for (unsigned f = 0; f < kFields; ++f) {
        partner[0][f] = self[1][f];
        partner[1][f] = self[0][f];
      }
      hi[0] = zero;
      hi[1] = ones;
    } else {
      const __m256i m = hi_lane_mask(stride);
      for (unsigned v = 0; v < nv; ++v) {
        for (unsigned f = 0; f < kFields; ++f) {
          partner[v][f] = partner_shuffle(self[v][f], stride);
        }
        hi[v] = m;
      }
    }
    // Per-lane verdict "self beats partner".  Every cascade rule's guard
    // is symmetric and its verdict flips under operand swap, so
    // cascade(b, a) == !cascade(a, b) — EXCEPT on a full tie (equal ids
    // and every guard false; the chip's lanes are an id permutation, but
    // the public load(span) path admits duplicates), where BOTH lanes of
    // a pair report sw = 1 (and both-0 is impossible: the id floor always
    // crowns at least one side).  The pair's canonical a_wins (a = lower
    // lane) is therefore (sw ^ hi) | (sw & partner's sw).
    __m256i sw[2];
    for (unsigned v = 0; v < nv; ++v) {
      sw[v] = cascade(self[v], partner[v], mode);
    }
    __m256i tie[2];
    if (stride == 16) {
      tie[0] = _mm256_and_si256(sw[0], sw[1]);
      tie[1] = tie[0];
    } else {
      for (unsigned v = 0; v < nv; ++v) {
        tie[v] = _mm256_and_si256(sw[v], partner_shuffle(sw[v], stride));
      }
    }
    for (unsigned v = 0; v < nv; ++v) {
      const __m256i aw =
          _mm256_or_si256(_mm256_xor_si256(sw[v], hi[v]), tie[v]);
      const __m256i desc = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(pp.desc + 16 * v));
      // swap iff a_wins XNOR descending (winner to the lower lane; a
      // descending comparator routes the winner up instead).
      const __m256i swap =
          _mm256_xor_si256(_mm256_xor_si256(aw, desc), ones);
      swap_acc = _mm256_sub_epi16(swap_acc, swap);
      pend_acc = _mm256_sub_epi16(
          pend_acc, _mm256_or_si256(self[v][kPd], partner[v][kPd]));
      for (unsigned f = 0; f < kFields; ++f) {
        self[v][f] = blend(self[v][f], partner[v][f], swap);
      }
    }
  }

  for (unsigned f = 0; f < kFields; ++f) {
    for (unsigned v = 0; v < nv; ++v) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(fields[f] + 16 * v),
                         self[v][f]);
    }
  }
  const __m256i one16 = _mm256_set1_epi16(1);
  st.swaps += hsum_epi32(_mm256_madd_epi16(swap_acc, one16)) / 2;
  st.pending_pairs += hsum_epi32(_mm256_madd_epi16(pend_acc, one16)) / 2;
  return true;
}

void run_pass_avx2(LaneRegs& r, unsigned n, const PassPlan& plan,
                   ComparisonMode mode, KernelStats& st) {
  const unsigned nv = n / 16;
  const unsigned stride = plan.stride;
  std::uint16_t* const fields[kFields] = {r.deadline, r.loss_num, r.loss_den,
                                          r.arrival,  r.id,       r.pend};
  const __m256i ones = _mm256_set1_epi8(char(-1));
  const __m256i zero = _mm256_setzero_si256();

  // Registered comparator inputs: load every operand before writing any
  // result (stride 16 pairs span both vectors).
  __m256i self[kFields][2];
  for (unsigned f = 0; f < kFields; ++f) {
    for (unsigned v = 0; v < nv; ++v) {
      self[f][v] = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(fields[f] + 16 * v));
    }
  }

  unsigned swap_bits = 0;
  unsigned pend_bits = 0;
  for (unsigned v = 0; v < nv; ++v) {
    __m256i partner[kFields];
    __m256i hi;
    if (stride == 16) {
      for (unsigned f = 0; f < kFields; ++f) partner[f] = self[f][v ^ 1];
      hi = (v == 0) ? zero : ones;
    } else {
      for (unsigned f = 0; f < kFields; ++f) {
        partner[f] = partner_shuffle(self[f][v], stride);
      }
      hi = hi_lane_mask(stride);
    }
    __m256i a[kFields];
    __m256i b[kFields];
    for (unsigned f = 0; f < kFields; ++f) {
      a[f] = blend(self[f][v], partner[f], hi);
      b[f] = blend(partner[f], self[f][v], hi);
    }
    const __m256i aw = cascade(a, b, mode);
    const __m256i desc = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(plan.desc + 16 * v));
    // swap iff a_wins XNOR descending (winner to the lower lane; a
    // descending comparator routes the winner up instead).
    const __m256i swap =
        _mm256_xor_si256(_mm256_xor_si256(aw, desc), ones);
    for (unsigned f = 0; f < kFields; ++f) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(fields[f] + 16 * v),
                         blend(self[f][v], partner[f], swap));
    }
    // Each swapped pair raises 4 mask bytes across the vectors (2 lanes x
    // 2 bytes); same for pairs with a pending operand.
    swap_bits += std::popcount(
        static_cast<unsigned>(_mm256_movemask_epi8(swap)));
    pend_bits += std::popcount(static_cast<unsigned>(_mm256_movemask_epi8(
        _mm256_or_si256(self[kPd][v], partner[kPd]))));
  }
  st.swaps += swap_bits / 4;
  st.pending_pairs += pend_bits / 4;
}

}  // namespace ss::hw::simd::detail

#endif  // SS_HAVE_AVX2
