#include "hw/dma.hpp"

namespace ss::hw {

Nanos DmaEngine::pull_to_card(std::size_t bytes) {
  ++transfers_;
  bytes_moved_ += bytes;
  // The host owns the bank while staging, the card takes it for the burst,
  // then the FPGA side needs it back to consume — two arbitration events
  // bracket every bulk transfer, which is exactly the bottleneck the paper
  // reports for the RC1000.
  Nanos t = bank_.acquire(BankOwner::kHost);
  t += pci_.dma_transfer(bytes);
  t += bank_.acquire(BankOwner::kFpga);
  return t;
}

Nanos DmaEngine::push_to_host(std::size_t bytes) {
  ++transfers_;
  bytes_moved_ += bytes;
  Nanos t = bank_.acquire(BankOwner::kFpga);
  t += pci_.dma_transfer(bytes);
  t += bank_.acquire(BankOwner::kHost);
  return t;
}

}  // namespace ss::hw
