// area_model.hpp — Virtex area and clock-rate model for the scheduler.
//
// Reproduces Figure 7 analytically.  The paper gives the measured per-block
// areas for the Virtex-I implementation (Section 5.1): Control & Steering
// 22 slices, Decision block 190 slices, Register Base block 150 slices,
// plus stream-slot-count-dependent shuffle wiring / pass-through CLBs, and
// states the scaling facts the model is calibrated to:
//
//   * area grows linearly in stream-slots for both configurations, and BA
//     "maintains almost the same area with its WR counterpart";
//   * decision time is 2/3/4/5 network cycles for 4/8/16/32 slots;
//   * WR shows less clock-rate variation from 4 to 32 slots than BA;
//   * BA is ~10 % below WR at 32 slots and close to 20 % below at 8/16;
//   * the Celoxica RC1000 card clocks designs up to 100 MHz.
//
// Absolute megahertz are NOT published (Figure 7 is an image), so the clock
// numbers below are a calibrated model that satisfies every stated
// relation; EXPERIMENTS.md records this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ss::hw {

enum class ArchConfig : std::uint8_t {
  kBlockArchitecture,  ///< BA: winners and losers routed (sorted block)
  kWinnerRouting,      ///< WR: winner-only routing (max-finding)
};

enum class FpgaFamily : std::uint8_t {
  kVirtexI,   ///< the paper's prototype family (Celoxica RC1000, XCV1000)
  kVirtexII,  ///< future-work target: higher clock, hard multipliers
};

/// A Xilinx device with its slice capacity (CLB array x 2 slices/CLB for
/// Virtex-I).  Used for the does-it-fit analysis of the framework bench.
struct Device {
  std::string name;
  FpgaFamily family;
  unsigned slices;
};

/// The Virtex-I parts relevant to the paper (XCV1000 = 64x96 CLBs).
[[nodiscard]] const std::vector<Device>& virtex1_devices();

/// Virtex-II parts (Section 6's future-work target).  Slice counts from
/// the XC2V datasheet; these parts also carry hard 18x18 multipliers that
/// absorb the Decision block's window-constraint cross-products.
[[nodiscard]] const std::vector<Device>& virtex2_devices();

struct AreaBreakdown {
  unsigned control_slices;
  unsigned register_slices;   ///< N register base blocks
  unsigned decision_slices;   ///< N/2 decision blocks
  unsigned routing_slices;    ///< shuffle wiring & pass-through CLBs
  [[nodiscard]] unsigned total() const {
    return control_slices + register_slices + decision_slices +
           routing_slices;
  }
};

class AreaModel {
 public:
  explicit AreaModel(FpgaFamily family = FpgaFamily::kVirtexI);

  /// Section-6 extension: compute-ahead Register Base blocks precompute
  /// both candidate next states (winner- and loser-adjusted) under
  /// predication, shrinking PRIORITY_UPDATE from 3 cycles to 1 at the
  /// cost of a second adjust datapath in every slot.
  void set_compute_ahead(bool v) { compute_ahead_ = v; }
  [[nodiscard]] bool compute_ahead() const { return compute_ahead_; }

  /// Extra slices per slot for the duplicated (predicated) adjust path.
  static constexpr unsigned kComputeAheadSlicesPerSlot = 60;

  /// Slice usage of an N-slot scheduler in the given configuration.
  [[nodiscard]] AreaBreakdown area(unsigned slots, ArchConfig cfg) const;

  /// Achievable clock rate (MHz) after place & route.
  [[nodiscard]] double clock_mhz(unsigned slots, ArchConfig cfg) const;

  /// Smallest device of the family that fits the design, or nullptr.
  [[nodiscard]] const Device* smallest_fit(unsigned slots,
                                           ArchConfig cfg) const;

  /// Utilization fraction on a given device (may exceed 1 = does not fit).
  [[nodiscard]] double utilization(unsigned slots, ArchConfig cfg,
                                   const Device& dev) const;

  [[nodiscard]] FpgaFamily family() const { return family_; }

 private:
  FpgaFamily family_;
  bool compute_ahead_ = false;
};

}  // namespace ss::hw
