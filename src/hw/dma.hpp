// dma.hpp — the card's DMA "pull" engine.
//
// For bulk transfers the Stream processor sets the DMA engine registers
// and asserts the pull-start line; bank ownership is arbitrated to the
// card, the burst streams over PCI, and ownership returns (Section 4.2,
// "The ShareStreams Hardware and Streaming Unit").  This class composes
// the PCI burst model with the SRAM bank arbitration so the endsystem
// realization can account both costs in one call.
#pragma once

#include <cstdint>

#include "hw/pci.hpp"
#include "hw/sram.hpp"

namespace ss::hw {

class DmaEngine {
 public:
  DmaEngine(PciModel& pci, SramBank& bank) : pci_(pci), bank_(bank) {}

  /// Pull `bytes` from host memory into the bank (arrival-time batches).
  /// Returns total latency: bank acquisition by the card + PCI burst +
  /// bank release back to the FPGA side consumer.
  [[nodiscard]] Nanos pull_to_card(std::size_t bytes);

  /// Push `bytes` from the bank to host memory (scheduled Stream IDs).
  [[nodiscard]] Nanos push_to_host(std::size_t bytes);

  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] std::uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  PciModel& pci_;
  SramBank& bank_;
  std::uint64_t transfers_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace ss::hw
