// shuffle.hpp — the recirculating shuffle-exchange network.
//
// The ShareStreams fabric arranges N/2 Decision blocks in a SINGLE stage.
// Each SCHEDULE pass the Control & Steering muxes route the N attribute
// words through the perfect-shuffle interconnect into the Decision blocks,
// which compare-exchange each adjacent pair; log2(N) passes complete one
// decision cycle.  This conserves area versus a Decision-block tree (which
// needs N-1 blocks and cannot be pipelined when priorities update every
// decision cycle — Section 4.3).
//
// Two architectural configurations (the paper's central tradeoff):
//   * BA  (Base Architecture)   — winners AND losers are routed, so after
//     the passes the network holds an ordered *block* of all N streams.
//   * WR  (winner-only routing) — only winners propagate; after log2(N)
//     passes the single max-priority stream is available (max-finding).
//
// IMPORTANT FIDELITY NOTE.  log2(N) shuffle-exchange passes are a correct
// *max-finding* network (tournament property: the true maximum survives
// every comparison it enters), but NOT a full sorting network — bitonic
// sort needs log2N*(log2N+1)/2 passes.  We implement the paper's schedule
// verbatim, and additionally provide a bitonic schedule (full sort) and
// odd-even transposition (N passes) as configurable extensions; the
// ablation bench quantifies how sorted the paper-schedule block really is.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/decision_block.hpp"
#include "hw/fields.hpp"
#include "hw/simd_kernel.hpp"

namespace ss::telemetry {
class DecisionAudit;
}  // namespace ss::telemetry

namespace ss::hw {

/// Pairing schedule the Control & Steering unit programs into the muxes.
enum class SortSchedule : std::uint8_t {
  kPerfectShuffle,  ///< the paper's schedule: log2(N) shuffle-exchange passes
  kBitonic,         ///< Batcher bitonic merge-exchange: full sort, O(log^2 N)
  kOddEven,         ///< odd-even transposition: full sort, N passes
};

/// Number of passes a schedule takes for n slots (n a power of two >= 2).
[[nodiscard]] unsigned schedule_passes(SortSchedule s, unsigned n);

/// One compare-exchange pass of the single-stage network.
/// `pairing[i]` gives, for decision block i, the two lane indices it
/// compares this pass.  After the call the winner occupies the lower lane.
struct PairSpec {
  unsigned lo, hi;
  bool descending = false;  ///< bitonic passes flip some comparators
};

/// The recirculating network itself.  Holds N lanes of attribute words and
/// steps them through the configured schedule.  The object is reused every
/// decision cycle; `load()` corresponds to the Register Base blocks driving
/// their attribute buses.
class ShuffleNetwork {
 public:
  ShuffleNetwork(unsigned slots, SortSchedule schedule, ComparisonMode mode,
                 simd::KernelChoice kernel = simd::KernelChoice::kAuto);

  /// Drive slot attribute words onto the lanes (lane i <- words[i]).
  void load(std::span<const AttrWord> words);

  /// Drive the SoA register file onto the lanes without materializing
  /// AttrWords first.  The lanes() / winner() views are refreshed when
  /// the decision cycle completes (or on the first scalar step()).
  void load(const AttrSoA& soa);

  /// Direct-store LOAD path, the fastest: the Register Base blocks write
  /// their attribute buses straight into this lane file
  /// (RegisterBlock::publish_lanes), then the chip seals the decision
  /// with load_lanes().  Skips even the widening pass of
  /// load(const AttrSoA&).
  [[nodiscard]] simd::LaneRegs& lane_file() { return regs_; }

  /// True while the lane registers (not the AttrWord mirror) hold the
  /// authoritative lane state — i.e. nothing has materialized them back
  /// since the last register-resident decision.  The chip's incremental
  /// LOAD path requires this: it patches individual lanes in place.
  [[nodiscard]] bool lanes_resident() const { return soa_loaded_; }

  /// Seal a lane_file() publish.  `pending_mask` holds the accumulated
  /// per-lane pending bits (bit i == lane i backlogged).
  void load_lanes(std::uint32_t pending_mask) {
    const std::uint32_t full =
        slots_ == 32 ? 0xFFFFFFFFu : ((1u << slots_) - 1u);
    all_pending_ = (pending_mask & full) == full;
    soa_loaded_ = true;
    pass_ = 0;
  }

  /// Run one pass (one hardware cycle of the SCHEDULE state).  Returns the
  /// number of decision blocks that swapped their operands this pass (used
  /// by tests and by the activity-based power proxy in the area model).
  unsigned step();

  /// Run all remaining passes of the decision cycle.
  void run_all();

  /// True once the schedule's passes have all executed.
  [[nodiscard]] bool done() const { return pass_ == total_passes_; }

  [[nodiscard]] unsigned passes_executed() const { return pass_; }
  [[nodiscard]] unsigned total_passes() const { return total_passes_; }
  [[nodiscard]] unsigned slots() const { return slots_; }

  /// Lane contents after the executed passes.  With the BA configuration
  /// this is the *block*: lane 0 holds the max-priority stream.  When a
  /// kernel decision ran on the lane registers, the AttrWord view is
  /// gathered lazily on first access.
  [[nodiscard]] std::span<const AttrWord> lanes() const {
    if (soa_loaded_) materialize_lanes();
    return lanes_;
  }

  /// Max-finding result (lane 0).  Valid once done().
  [[nodiscard]] const AttrWord& winner() const { return lanes()[0]; }

  /// Max-finding result ID straight from the lane registers — the WR
  /// grant path, with no AttrWord materialization.
  [[nodiscard]] SlotId winner_id() const {
    return soa_loaded_ ? static_cast<SlotId>(regs_.id[0]) : lanes_[0].id;
  }

  /// Append the IDs of the backlogged lanes in lane order (the BA grant
  /// *block*), read straight from the lane registers.
  void block_ids(std::vector<SlotId>& out) const;

  /// The pairings used for a given pass (exposed for the steering-logic
  /// tests: the mux programming must be a perfect matching every pass).
  [[nodiscard]] const std::vector<PairSpec>& pairings(unsigned pass) const {
    return schedule_pairs_[pass];
  }

  /// Cumulative compare-exchange swaps (lane buses that toggled).  A
  /// proxy for dynamic switching activity: the BA configuration routes
  /// loser buses too, so its activity per decision exceeds WR's — the
  /// power side of the paper's area/clock tradeoff.
  [[nodiscard]] std::uint64_t total_swaps() const { return total_swaps_; }
  [[nodiscard]] std::uint64_t total_comparisons() const {
    return total_comparisons_;
  }

  /// Comparisons whose operands included at least one pending stream —
  /// the exact denominator of the audit plane (counted unconditionally
  /// under SS_TELEMETRY so unsampled decisions keep an exact tally
  /// without the per-comparison audit callback cost; 0 when telemetry is
  /// compiled out).
  [[nodiscard]] std::uint64_t total_pending_comparisons() const {
    return pending_comparisons_;
  }

  /// Restart the pass counter for the next decision cycle.
  void reset();

  /// Provenance hook: when attached, every comparison with at least one
  /// pending operand reports (winner, loser, rule) to the audit profile.
  /// Observation only — lane routing is unchanged.  Pass nullptr to detach.
  void attach_audit(telemetry::DecisionAudit* audit) {
    audit_ = audit;
    audit_live_ = audit != nullptr;
  }

  /// Per-decision sampling gate: when false the per-comparison callback
  /// is skipped wholesale (the chip's unsampled path — exact tallies
  /// still flow through total_pending_comparisons and the decision-level
  /// hooks).  Re-enabled per decision by the chip; attach_audit resets it
  /// to live so direct users get the full-rate behavior.
  void set_audit_live(bool live) { audit_live_ = live && audit_ != nullptr; }

  /// The decision kernel this network resolved to (SS_SIMD / CPU aware).
  /// kReference is the per-pair hw::decide() path; kSwar / kAvx2 run the
  /// branch-free stage kernel when run_all() executes a whole decision
  /// cycle without a live audit hook (sampled decisions always take the
  /// reference path so per-comparison rule provenance is preserved).
  [[nodiscard]] simd::Kernel kernel() const { return kernel_; }

 private:
  void build_schedule(SortSchedule s);
  /// Gather the lane registers back into the AttrWord view after a
  /// kernel-run decision (or an SoA load followed by scalar stepping).
  /// Const because it only refreshes the lazily-maintained AttrWord
  /// mirror of the lane registers (lanes_ / soa_loaded_ are mutable).
  void materialize_lanes() const;

  unsigned slots_;
  ComparisonMode mode_;
  simd::Kernel kernel_ = simd::Kernel::kReference;
  unsigned total_passes_ = 0;
  unsigned pass_ = 0;
  std::uint64_t total_swaps_ = 0;
  std::uint64_t total_comparisons_ = 0;
  std::uint64_t pending_comparisons_ = 0;
  std::uint64_t total_pairs_ = 0;  ///< comparisons per full decision cycle
  bool all_pending_ = false;  ///< every loaded lane backlogged (pass-invariant)
  bool audit_live_ = false;   ///< per-decision comparison-callback gate
  /// Lane registers hold newer state than lanes_ (mutable pair: lanes_ is
  /// a lazily-refreshed view of regs_, updated from const accessors).
  mutable bool soa_loaded_ = false;
  mutable std::vector<AttrWord> lanes_;
  std::vector<std::vector<PairSpec>> schedule_pairs_;  // [pass][block]
  std::vector<simd::PassPlan> plan_;  ///< vector-lowered schedule_pairs_
  simd::LaneRegs regs_;               ///< SoA lane registers (kernel state)
  telemetry::DecisionAudit* audit_ = nullptr;
};

/// Pure tournament max-finder used by the WR configuration: only winners
/// are routed forward, so after log2(N) cycles a single stream remains.
/// Returns the winning attribute word; `cmp_count` (optional) receives the
/// number of comparisons performed (N-1, one per Decision block firing).
[[nodiscard]] AttrWord tournament_max(std::span<const AttrWord> words,
                                      ComparisonMode mode,
                                      unsigned* cmp_count = nullptr);

}  // namespace ss::hw
