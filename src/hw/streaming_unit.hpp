// streaming_unit.hpp — the card's Streaming unit (Figure 3).
//
// "The Streaming unit keeps per-stream queues on the FPGA PCI card *full*
// using a combination of push and pull transfers.  For small transfers,
// the Stream processor can push arrival-times to the FPGA PCI card.  For
// bulk-transfers, the Stream processor will set the DMA engine registers
// and assert the pull-start line so that bank ownership can be arbitrated
// between the Stream processor and the Scheduler hardware unit."
//
// Mechanically: each stream has a bounded on-card arrival-time queue
// (block RAM for the head, SRAM bank for depth).  When a queue drains to
// its low watermark the unit refills it from the host's pending arrivals
// — by PIO push when few offsets are waiting, by DMA pull (with the bank
// ownership round-trip) when a bulk batch is available.  Underruns (the
// scheduler asking for an arrival the card doesn't have) are counted;
// they are the symptom the watermark exists to prevent.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "hw/dma.hpp"
#include "hw/pci.hpp"
#include "hw/sram.hpp"
#include "queueing/queue_manager.hpp"
#include "util/sim_time.hpp"

namespace ss::hw {

struct StreamingUnitConfig {
  std::size_t card_queue_depth = 256;  ///< offsets per stream on the card
  std::size_t low_watermark = 64;      ///< refill below this depth
  std::size_t pull_threshold = 32;     ///< >= this many offsets -> DMA pull
};

struct StreamingStats {
  std::uint64_t push_refills = 0;   ///< PIO transfers
  std::uint64_t pull_refills = 0;   ///< DMA transfers
  std::uint64_t offsets_moved = 0;
  std::uint64_t underruns = 0;
  std::uint64_t transfer_ns = 0;    ///< modeled bus time spent
};

class StreamingUnit {
 public:
  StreamingUnit(const StreamingUnitConfig& cfg, PciModel& pci,
                SramBank& bank, std::uint32_t streams);

  /// Below-watermark test (the refill trigger the systems software polls).
  [[nodiscard]] bool needs_refill(std::uint32_t stream) const;

  /// Refill `stream`'s card queue from the host QM's pending arrivals.
  /// Chooses push vs pull by batch size, charges the modeled transfer
  /// time, and returns the offsets actually moved.
  std::size_t refill(std::uint32_t stream, queueing::QueueManager& qm);

  /// Scheduler side: consume the next arrival offset (false = underrun).
  bool pop_arrival(std::uint32_t stream, std::uint16_t& out);

  [[nodiscard]] std::size_t depth(std::uint32_t stream) const {
    return queues_[stream].size();
  }
  [[nodiscard]] const StreamingStats& stats() const { return stats_; }
  [[nodiscard]] const StreamingUnitConfig& config() const { return cfg_; }

 private:
  StreamingUnitConfig cfg_;
  PciModel& pci_;
  DmaEngine dma_;
  std::vector<std::deque<std::uint16_t>> queues_;
  StreamingStats stats_;
};

}  // namespace ss::hw
