#include "hw/streaming_unit.hpp"

#include <algorithm>
#include <cassert>

namespace ss::hw {

StreamingUnit::StreamingUnit(const StreamingUnitConfig& cfg, PciModel& pci,
                             SramBank& bank, std::uint32_t streams)
    : cfg_(cfg), pci_(pci), dma_(pci, bank), queues_(streams) {
  assert(cfg_.low_watermark <= cfg_.card_queue_depth);
}

bool StreamingUnit::needs_refill(std::uint32_t stream) const {
  assert(stream < queues_.size());
  return queues_[stream].size() < cfg_.low_watermark;
}

std::size_t StreamingUnit::refill(std::uint32_t stream,
                                  queueing::QueueManager& qm) {
  assert(stream < queues_.size());
  auto& q = queues_[stream];
  const std::size_t room = cfg_.card_queue_depth - q.size();
  if (room == 0) return 0;
  const auto batch = qm.batch_arrivals(stream, room);
  if (batch.empty()) return 0;

  const std::size_t bytes = batch.size() * sizeof(std::uint16_t);
  if (batch.size() >= cfg_.pull_threshold) {
    // Bulk: program the DMA engine, assert pull-start, pay the bank
    // ownership round-trip.
    stats_.transfer_ns += count(dma_.pull_to_card(bytes));
    ++stats_.pull_refills;
  } else {
    // Small: the Stream processor pushes the offsets with PIO writes.
    stats_.transfer_ns += count(pci_.pio_write(bytes));
    ++stats_.push_refills;
  }
  for (const std::uint16_t off : batch) q.push_back(off);
  stats_.offsets_moved += batch.size();
  return batch.size();
}

bool StreamingUnit::pop_arrival(std::uint32_t stream, std::uint16_t& out) {
  assert(stream < queues_.size());
  auto& q = queues_[stream];
  if (q.empty()) {
    ++stats_.underruns;
    return false;
  }
  out = q.front();
  q.pop_front();
  return true;
}

}  // namespace ss::hw
