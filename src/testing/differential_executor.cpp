#include "testing/differential_executor.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "hwpq/factory.hpp"
#include "robust/guarded_scheduler.hpp"
#include "testing/rank_equivalence.hpp"
#include "util/hash.hpp"

namespace ss::testing {
namespace {

// Field tags mixed into the digest ahead of each value, so that streams
// with transposed fields cannot collide.
enum : std::uint8_t {
  kTagIdle = 1,
  kTagGrant = 2,
  kTagCirculated = 3,
  kTagDrop = 4,
  kTagCounters = 5,
};

std::string describe_grant(const char* who, std::uint32_t stream,
                           std::uint64_t emit, bool met) {
  std::ostringstream os;
  os << who << "{stream=" << stream << " emit=" << emit
     << " met=" << (met ? 1 : 0) << "}";
  return os.str();
}

/// hwpq entries need a single integer key realizing the fabric's tag-only
/// total order.  Keys are only comparable to the fabric when tags are
/// globally unique (Scenario::global_tags), so the ID bits below the tag
/// never actually decide — they just keep keys distinct for the PQ
/// structures' own invariants.
std::uint64_t pq_key(std::uint64_t tag, std::uint32_t id) {
  return (tag << 8) | id;
}

struct AggState {
  core::AggregationManager mgr;
  // slot -> handle in mgr (or -1 when the slot is unaggregated)
  std::vector<std::int32_t> handle;
  std::vector<std::uint64_t> slot_grants;  // grants delivered per slot
};

}  // namespace

RunResult DifferentialExecutor::run(const Scenario& sc) const {
  RunResult res;
  Fnv1a64 hash;

  // --- construct the implementations ------------------------------------
  hw::ChipConfig hc;
  hc.slots = sc.fabric.slots;
  hc.block_mode = sc.fabric.block_mode;
  hc.min_first = sc.fabric.min_first;
  hc.schedule = sc.fabric.schedule;
  hc.batch_depth = sc.fabric.batch_depth;
  switch (sc.fabric.discipline) {
    case Discipline::kDwcs:
      hc.cmp_mode = hw::ComparisonMode::kDwcsFull;
      break;
    case Discipline::kEdf:
      hc.cmp_mode = hw::ComparisonMode::kTagOnly;
      break;
    case Discipline::kStaticPrio:
      hc.cmp_mode = hw::ComparisonMode::kStatic;
      break;
    case Discipline::kFairTag:
      hc.cmp_mode = hw::ComparisonMode::kTagOnly;
      hc.timing.bypass_update = true;  // Section-2 bypass (timing only)
      break;
  }
  hw::SchedulerChip chip(hc);

  // Fault plane: the chip is wrapped in a GuardedScheduler that retries
  // injected faults and fails over to its own software shadow on
  // exhaustion.  The oracle below never faults, so the diff checks the
  // recovery contract end to end: the guarded grant stream must stay
  // oracle-equivalent across every fault and across the failover seam.
  std::unique_ptr<robust::FaultPlan> fault_plan;
  std::unique_ptr<robust::GuardedScheduler> guard;
  if (sc.faults.enabled()) {
    fault_plan = std::make_unique<robust::FaultPlan>(sc.faults);
    robust::GuardedScheduler::Options go;
    go.model_transport = true;  // exercise the SRAM fault sites too
    guard = std::make_unique<robust::GuardedScheduler>(chip, fault_plan.get(),
                                                       go);
  }

  // Diagnosis context: the waveform window divergence reports render, and
  // (when the driver passed a registry) the chip's metric stream.
  hw::Tracer tracer(opt_.trace_depth == 0 ? 1 : opt_.trace_depth);
  chip.attach_tracer(&tracer);
  telemetry::ChipMetrics chip_metrics;
  if (opt_.metrics) {
    chip_metrics = telemetry::ChipMetrics::create(*opt_.metrics);
    chip.attach_metrics(&chip_metrics);
  }
  telemetry::RobustMetrics robust_metrics;
  if (opt_.metrics && guard) {
    robust_metrics = telemetry::RobustMetrics::create(*opt_.metrics);
    guard->attach_metrics(&robust_metrics);
  }
  if (opt_.audit) {
    // Observation only: the audit hooks read chip state and never steer a
    // comparison, so a run's digest is identical with or without a session
    // attached (asserted by AuditDigest.ObservationOnly10k).
    if (guard) {
      guard->attach_audit(opt_.audit);
    } else {
      chip.attach_audit(opt_.audit);
    }
    opt_.audit->begin_run();
  }

  dwcs::ReferenceScheduler::Options so;
  so.block_mode = sc.fabric.block_mode;
  so.min_first = sc.fabric.min_first;
  so.batch_depth = sc.fabric.batch_depth;
  so.edf_comparison = sc.fabric.discipline == Discipline::kEdf ||
                      sc.fabric.discipline == Discipline::kFairTag;
  dwcs::ReferenceScheduler oracle(so);

  const unsigned n = sc.fabric.slots;
  for (unsigned i = 0; i < n; ++i) {
    const hw::SlotConfig slot_cfg =
        to_slot_config(sc.fabric.discipline, sc.streams[i]);
    const dwcs::StreamSpec spec =
        to_stream_spec(sc.fabric.discipline, sc.streams[i]);
    if (guard) {
      guard->load_slot(static_cast<hw::SlotId>(i), slot_cfg, spec);
    } else {
      chip.load_slot(static_cast<hw::SlotId>(i), slot_cfg);
    }
    oracle.add_stream(spec);
  }

  const auto fabric_vtime = [&] {
    return guard ? guard->vtime() : chip.vtime();
  };

  // The four related-work PQ structures join the diff in fair-tag WR
  // scenarios, where the fabric's grant order is a pure pop-min sequence.
  const std::size_t tagged_events = static_cast<std::size_t>(
      std::count_if(sc.events.begin(), sc.events.end(), [](const Event& e) {
        return e.kind != EventKind::kDecide && e.kind != EventKind::kReconfig;
      }));
  bool hwpq_active = opt_.check_hwpq &&
                     sc.fabric.discipline == Discipline::kFairTag &&
                     !sc.fabric.block_mode && sc.global_tags;
  std::vector<std::unique_ptr<hwpq::HwPriorityQueue>> pqs;
  if (hwpq_active) {
    for (hwpq::PqKind k : hwpq::kAllPqKinds) {
      pqs.push_back(hwpq::make_pq(k, tagged_events + 8));
    }
  }

  // Host-side aggregation: grants fan out to streamlets after scheduling.
  AggState agg;
  const bool agg_active = opt_.check_aggregation && !sc.aggregation.empty();
  if (agg_active) {
    agg.handle.assign(n, -1);
    agg.slot_grants.assign(n, 0);
    for (std::size_t s = 0; s < sc.aggregation.size(); ++s) {
      if (!sc.aggregation[s].empty()) {
        agg.handle[s] =
            static_cast<std::int32_t>(agg.mgr.bind_slot(sc.aggregation[s]));
      }
    }
  }

  std::vector<std::uint64_t> tag_clock(n, 0);
  std::uint64_t global_tag_clock = 0;
  std::uint64_t grant_ordinal = 0;  // 1-based count of oracle grants seen

  auto diverge = [&](std::size_t event_index, const std::string& detail) {
    res.diverged = true;
    res.event_index = event_index;
    res.decision_cycle = res.decisions;
    res.detail = detail;
  };

  // --- event loop --------------------------------------------------------
  hw::DecisionOutcome h;  // reused across kDecide events (no per-decision
                          // allocation once capacities settle)
  for (std::size_t ei = 0; ei < sc.events.size() && !res.diverged; ++ei) {
    const Event& e = sc.events[ei];
    switch (e.kind) {
      case EventKind::kArrival:
      case EventKind::kTaggedArrival: {
        const std::uint32_t s = e.stream;
        const std::uint64_t arr = fabric_vtime();
        if (sc.fabric.discipline == Discipline::kFairTag) {
          // Service tags must advance monotonically per stream; a plain
          // arrival in a fair-tag scenario degrades to increment 1 so any
          // event subsequence stays valid (the shrinker depends on this).
          const std::uint64_t inc =
              e.kind == EventKind::kTaggedArrival
                  ? std::max<std::uint32_t>(1, e.tag_increment)
                  : 1;
          std::uint64_t tag;
          if (sc.global_tags) {
            global_tag_clock += inc;
            tag = global_tag_clock;
          } else {
            tag_clock[s] += inc;
            tag = tag_clock[s];
          }
          if (guard) {
            guard->push_tagged_request(static_cast<hw::SlotId>(s), tag, arr);
          } else {
            chip.push_tagged_request(static_cast<hw::SlotId>(s),
                                     hw::Deadline{tag}, hw::Arrival{arr});
          }
          oracle.push_tagged_request(s, tag, arr);
          for (auto& pq : pqs) {
            pq->push({pq_key(tag, s), s});
          }
        } else {
          if (guard) {
            guard->push_request(static_cast<hw::SlotId>(s), arr);
          } else {
            chip.push_request(static_cast<hw::SlotId>(s), hw::Arrival{arr});
          }
          oracle.push_request(s, arr);
        }
        ++res.arrivals;
        break;
      }

      case EventKind::kReconfig: {
        if (guard) {
          guard->load_slot(static_cast<hw::SlotId>(e.stream),
                           to_slot_config(sc.fabric.discipline, e.setup),
                           to_stream_spec(sc.fabric.discipline, e.setup));
        } else {
          chip.load_slot(static_cast<hw::SlotId>(e.stream),
                         to_slot_config(sc.fabric.discipline, e.setup));
        }
        oracle.reload_stream(
            e.stream, to_stream_spec(sc.fabric.discipline, e.setup));
        // The PQs have no "discard this stream's entries" operation (the
        // paper's argument, in miniature); their contents are now stale.
        hwpq_active = false;
        pqs.clear();
        break;
      }

      case EventKind::kDecide: {
        if (guard) {
          guard->run_decision_cycle(h);
        } else {
          chip.run_decision_cycle(h);
        }
        dwcs::SwDecision s = oracle.run_decision_cycle();
        ++res.decisions;
        res.grants += h.grants.size();
        res.drops += h.drops.size();

        // The inject_fault_at_grant knob, two eras: with the fault plane
        // disabled it corrupts the oracle's K-th grant (shrinker/replay
        // self-validation, the PR-1 contract); with the plane enabled it
        // forces failover at the K-th grant — the schedule must NOT change,
        // which the remaining diffs verify.
        if (sc.inject_fault_at_grant != 0) {
          if (sc.faults.enabled()) {
            for (const dwcs::SwGrant& g : s.grants) {
              (void)g;
              if (++grant_ordinal == sc.inject_fault_at_grant && guard) {
                guard->force_failover();
              }
            }
          } else {
            for (dwcs::SwGrant& g : s.grants) {
              if (++grant_ordinal == sc.inject_fault_at_grant) {
                g.met_deadline = !g.met_deadline;
              }
            }
          }
        }

        // --- diff the outcomes ---
        if (h.idle != s.idle) {
          diverge(ei, std::string("idle flag: chip=") +
                          (h.idle ? "1" : "0") + " oracle=" +
                          (s.idle ? "1" : "0"));
          break;
        }
        hash.mix_byte(kTagIdle);
        hash.mix(h.idle ? 1 : 0);
        if (h.grants.size() != s.grants.size()) {
          diverge(ei, "grant count: chip=" + std::to_string(h.grants.size()) +
                          " oracle=" + std::to_string(s.grants.size()));
          break;
        }
        bool grant_diff = false;
        for (std::size_t g = 0; g < h.grants.size(); ++g) {
          const hw::Grant& hg = h.grants[g];
          const dwcs::SwGrant& sg = s.grants[g];
          if (hg.slot != sg.stream || hg.emit_vtime != sg.emit_vtime ||
              hg.met_deadline != sg.met_deadline) {
            diverge(ei, "grant " + std::to_string(g) + ": " +
                            describe_grant("chip", hg.slot, hg.emit_vtime,
                                           hg.met_deadline) +
                            " vs " +
                            describe_grant("oracle", sg.stream, sg.emit_vtime,
                                           sg.met_deadline));
            grant_diff = true;
            break;
          }
          hash.mix_byte(kTagGrant);
          hash.mix(hg.slot);
          hash.mix(hg.emit_vtime);
          hash.mix(hg.met_deadline ? 1 : 0);
        }
        if (grant_diff) break;
        const bool h_circ = h.circulated.has_value();
        const bool s_circ = s.circulated.has_value();
        if (h_circ != s_circ ||
            (h_circ && static_cast<std::uint32_t>(*h.circulated) !=
                           *s.circulated)) {
          diverge(ei, "circulated ID: chip=" +
                          (h_circ ? std::to_string(*h.circulated)
                                  : std::string("none")) +
                          " oracle=" +
                          (s_circ ? std::to_string(*s.circulated)
                                  : std::string("none")));
          break;
        }
        hash.mix_byte(kTagCirculated);
        hash.mix(h_circ ? 1 + std::uint64_t{*h.circulated} : 0);
        if (h.drops.size() != s.drops.size() ||
            !std::equal(h.drops.begin(), h.drops.end(), s.drops.begin(),
                        [](hw::SlotId a, std::uint32_t b) {
                          return std::uint32_t{a} == b;
                        })) {
          diverge(ei, "drop set mismatch (chip has " +
                          std::to_string(h.drops.size()) + ", oracle has " +
                          std::to_string(s.drops.size()) + ")");
          break;
        }
        for (hw::SlotId d : h.drops) {
          hash.mix_byte(kTagDrop);
          hash.mix(d);
        }
        if (fabric_vtime() != oracle.vtime()) {
          diverge(ei, "vtime: chip=" + std::to_string(fabric_vtime()) +
                          " oracle=" + std::to_string(oracle.vtime()));
          break;
        }

        // --- hwpq variants: their pop order is the fabric's grant order ---
        if (hwpq_active && !h.idle) {
          for (const hw::Grant& g : h.grants) {
            std::optional<hwpq::Entry> first;
            for (std::size_t p = 0; p < pqs.size() && !res.diverged; ++p) {
              const auto popped = pqs[p]->pop_min();
              if (!popped) {
                diverge(ei, pqs[p]->name() + " empty but chip granted slot " +
                                std::to_string(g.slot));
                break;
              }
              if (popped->id != g.slot) {
                diverge(ei, pqs[p]->name() + " popped stream " +
                                std::to_string(popped->id) +
                                " but chip granted slot " +
                                std::to_string(g.slot));
                break;
              }
              if (!first) {
                first = *popped;
              } else if (!(*popped == *first)) {
                diverge(ei, pqs[p]->name() + " popped a different entry than " +
                                "the other PQ variants for slot " +
                                std::to_string(g.slot));
                break;
              }
            }
            if (res.diverged) break;
          }
        }

        // --- host-side aggregation fan-out ---
        if (agg_active && !res.diverged) {
          for (const hw::Grant& g : h.grants) {
            if (agg.handle[g.slot] >= 0) {
              agg.mgr.on_grant(static_cast<std::uint32_t>(agg.handle[g.slot]));
              ++agg.slot_grants[g.slot];
            }
          }
        }
        break;
      }
    }
  }

  // --- end-of-run state comparison ---------------------------------------
  if (!res.diverged) {
    for (unsigned i = 0; i < n; ++i) {
      const hw::SlotCounters& raw =
          chip.slot(static_cast<hw::SlotId>(i)).counters();
      const dwcs::StreamCounters hmap =
          guard ? guard->counters(i)
                : dwcs::StreamCounters{raw.missed_deadlines, raw.violations,
                                       raw.serviced, raw.late_transmissions,
                                       raw.winner_cycles};
      const std::uint32_t hbacklog =
          guard ? guard->backlog(i)
                : chip.slot(static_cast<hw::SlotId>(i)).backlog();
      const dwcs::StreamCounters& scnt = oracle.stream(i).counters;
      if (!(hmap == scnt)) {
        diverge(sc.events.size(),
                "final counters differ for stream " + std::to_string(i));
        break;
      }
      if (hbacklog != oracle.stream(i).backlog) {
        diverge(sc.events.size(),
                "final backlog differs for stream " + std::to_string(i));
        break;
      }
      hash.mix_byte(kTagCounters);
      hash.mix(i);
      hash.mix(hmap.missed_deadlines);
      hash.mix(hmap.violations);
      hash.mix(hmap.serviced);
      hash.mix(hmap.late_transmissions);
      hash.mix(hmap.winner_cycles);
      hash.mix(hbacklog);
    }
  }

  // --- aggregation invariants --------------------------------------------
  if (!res.diverged && agg_active) {
    for (unsigned s = 0; s < n; ++s) {
      if (agg.handle[s] < 0) continue;
      const auto handle = static_cast<std::uint32_t>(agg.handle[s]);
      const std::vector<core::StreamletSet>& plan = sc.aggregation[s];
      const std::vector<std::uint64_t>& grants = agg.mgr.grants(handle);

      // Conservation: every slot grant reached exactly one streamlet.
      std::uint64_t total = 0;
      for (std::uint64_t g : grants) total += g;
      if (total != agg.slot_grants[s]) {
        diverge(sc.events.size(),
                "aggregation lost grants on slot " + std::to_string(s));
        break;
      }

      // Within each set: plain round-robin keeps streamlet counts within 1.
      std::uint64_t weight_sum = 0;
      std::size_t base = 0;
      for (std::size_t k = 0; k < plan.size(); ++k) {
        weight_sum += plan[k].weight;
        const auto lo_hi = std::minmax_element(
            grants.begin() + static_cast<std::ptrdiff_t>(base),
            grants.begin() +
                static_cast<std::ptrdiff_t>(base + plan[k].streamlets));
        if (*lo_hi.second - *lo_hi.first > 1) {
          diverge(sc.events.size(),
                  "round-robin spread > 1 within set " + std::to_string(k) +
                      " of slot " + std::to_string(s));
          break;
        }
        base += plan[k].streamlets;
      }
      if (res.diverged) break;

      // Across sets: the credit scheme keeps each set within one full
      // round (sum of weights) of its proportional share.
      for (std::size_t k = 0; k < plan.size(); ++k) {
        const double share = static_cast<double>(total) * plan[k].weight /
                             static_cast<double>(weight_sum);
        const double got =
            static_cast<double>(agg.mgr.set_grants(handle, k));
        if (std::abs(got - share) >
            static_cast<double>(weight_sum) + 1.0) {
          diverge(sc.events.size(),
                  "weighted share off by more than one round for set " +
                      std::to_string(k) + " of slot " + std::to_string(s));
          break;
        }
      }
      if (res.diverged) break;
    }
  }

  // --- rank-layer differential -------------------------------------------
  // An independent replay of the same event stream: the rank-expressed
  // discipline on its PIFO substrate against the bespoke sched/
  // implementation.  Runs after the chip diff (it shares no state with
  // it) and mixes its pop stream into the digest under tag 6 — scenarios
  // without the axis hash exactly as before.
  if (!res.diverged && sc.rank.enabled) {
    std::vector<std::size_t> event_of;
    const std::vector<RankOp> ops = ops_from_events(sc.events, &event_of);
    RankHarness rh = make_rank_harness(sc.rank, sc.streams, ops.size() + 8);
    const RankDiffOutcome ro = run_rank_ops(rh, ops, &hash);
    res.rank_checked = true;
    res.rank_served = ro.served;
    res.rank_inversions = ro.inversions;
    if (ro.diverged) {
      diverge(ro.op_index < event_of.size() ? event_of[ro.op_index]
                                            : sc.events.size(),
              "rank layer: " + ro.detail);
    }
  }

  res.hwpq_checked = hwpq_active && !pqs.empty();
  res.digest = hash.digest();
  if (guard) {
    res.faults_injected = fault_plan->total_injected();
    res.robust = guard->stats();
    res.failed_over = guard->failed_over();
  }
  if (res.diverged) {
    res.chip_trace_tail = tracer.render_all();
    if (opt_.metrics) res.metrics_json = opt_.metrics->to_json();
    if (opt_.audit) {
      res.audit_json = opt_.audit->to_json("divergence");
      opt_.audit->dump("divergence");
    }
  }
  if (opt_.export_chrome_trace) {
    res.chip_trace_chrome_json = tracer.to_chrome_json();
  }
  return res;
}

}  // namespace ss::testing
