#include "testing/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "testing/rank_equivalence.hpp"

namespace ss::testing {
namespace {

constexpr const char* kMagic = "ssfuzz v1";

const char* discipline_name(Discipline d) {
  switch (d) {
    case Discipline::kDwcs: return "dwcs";
    case Discipline::kEdf: return "edf";
    case Discipline::kStaticPrio: return "static";
    case Discipline::kFairTag: return "fairtag";
  }
  return "?";
}

Discipline parse_discipline(const std::string& s, int line) {
  if (s == "dwcs") return Discipline::kDwcs;
  if (s == "edf") return Discipline::kEdf;
  if (s == "static") return Discipline::kStaticPrio;
  if (s == "fairtag") return Discipline::kFairTag;
  throw std::runtime_error("trace line " + std::to_string(line) +
                           ": unknown discipline '" + s + "'");
}

const char* schedule_name(hw::SortSchedule s) {
  switch (s) {
    case hw::SortSchedule::kPerfectShuffle: return "shuffle";
    case hw::SortSchedule::kBitonic: return "bitonic";
    case hw::SortSchedule::kOddEven: return "oddeven";
  }
  return "?";
}

hw::SortSchedule parse_schedule(const std::string& s, int line) {
  if (s == "shuffle") return hw::SortSchedule::kPerfectShuffle;
  if (s == "bitonic") return hw::SortSchedule::kBitonic;
  if (s == "oddeven") return hw::SortSchedule::kOddEven;
  throw std::runtime_error("trace line " + std::to_string(line) +
                           ": unknown schedule '" + s + "'");
}

void write_setup(std::ostream& os, const StreamSetup& s) {
  os << s.period << ' ' << unsigned{s.loss_num} << ' ' << unsigned{s.loss_den}
     << ' ' << (s.droppable ? 1 : 0) << ' ' << s.initial_deadline;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("trace line " + std::to_string(line) + ": " + what);
}

StreamSetup read_setup(std::istringstream& is, int line) {
  StreamSetup s;
  unsigned period = 0, x = 0, y = 0, drop = 0;
  std::uint64_t dl0 = 0;
  if (!(is >> period >> x >> y >> drop >> dl0)) {
    fail(line, "malformed stream setup");
  }
  if (period > 0xFFFFu || x > 0xFFu || y > 0xFFu || drop > 1u) {
    fail(line, "stream setup field out of range");
  }
  s.period = static_cast<std::uint16_t>(period);
  s.loss_num = static_cast<std::uint8_t>(x);
  s.loss_den = static_cast<std::uint8_t>(y);
  s.droppable = drop != 0;
  s.initial_deadline = dl0;
  return s;
}

}  // namespace

std::string serialize(const Scenario& sc,
                      std::optional<std::uint64_t> expected_digest) {
  std::ostringstream os;
  os << kMagic << '\n';
  os << "fabric " << sc.fabric.slots << ' '
     << discipline_name(sc.fabric.discipline) << ' '
     << (sc.fabric.block_mode ? 1 : 0) << ' '
     << (sc.fabric.min_first ? 1 : 0) << ' '
     << schedule_name(sc.fabric.schedule) << '\n';
  if (sc.fabric.batch_depth != 0) {
    os << "batch " << sc.fabric.batch_depth << '\n';
  }
  os << "global_tags " << (sc.global_tags ? 1 : 0) << '\n';
  os << "fault_at_grant " << sc.inject_fault_at_grant << '\n';
  // Optional record so pre-fault-plane trace files parse unchanged; all
  // fields are integers, so the round trip is exact.
  if (sc.faults.enabled()) {
    os << "faults " << sc.faults.seed << ' ' << sc.faults.pci_fault_per64k
       << ' ' << sc.faults.sram_fault_per64k << ' '
       << sc.faults.chip_fault_per64k << ' ' << sc.faults.max_burst << ' '
       << sc.faults.pci_timeout_ns << ' ' << sc.faults.sram_stall_ns << ' '
       << sc.faults.chip_stall_ns << ' ' << sc.faults.chip_fail_after
       << '\n';
  }
  // Optional rank-layer record (pre-rank trace files parse unchanged).
  if (sc.rank.enabled) {
    os << "rank " << rank_disc_name(sc.rank.disc) << ' '
       << rank_backend_name(sc.rank.backend) << ' '
       << unsigned{sc.rank.bands} << '\n';
  }
  os << "streams " << sc.streams.size() << '\n';
  for (const StreamSetup& s : sc.streams) {
    os << "s ";
    write_setup(os, s);
    os << '\n';
  }
  if (!sc.aggregation.empty()) {
    os << "agg " << sc.aggregation.size() << '\n';
    for (const auto& sets : sc.aggregation) {
      os << "g " << sets.size();
      for (const core::StreamletSet& st : sets) {
        os << ' ' << st.streamlets << ':' << st.weight;
      }
      os << '\n';
    }
  }
  os << "events " << sc.events.size() << '\n';
  for (const Event& e : sc.events) {
    switch (e.kind) {
      case EventKind::kArrival:
        os << "a " << e.stream << '\n';
        break;
      case EventKind::kTaggedArrival:
        os << "t " << e.stream << ' ' << e.tag_increment << '\n';
        break;
      case EventKind::kDecide:
        os << "d\n";
        break;
      case EventKind::kReconfig:
        os << "r " << e.stream << ' ';
        write_setup(os, e.setup);
        os << '\n';
        break;
    }
  }
  if (expected_digest) {
    os << "expect_digest " << *expected_digest << '\n';
  }
  os << "end\n";
  return os.str();
}

TraceFile parse(std::istream& in) {
  TraceFile tf;
  Scenario& sc = tf.scenario;
  std::string line;
  int ln = 0;

  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++ln;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      return true;
    }
    return false;
  };

  if (!next_line() || line != kMagic) {
    fail(ln, "missing '" + std::string(kMagic) + "' header");
  }

  bool saw_end = false;
  std::size_t declared_streams = 0, declared_events = 0;
  while (next_line()) {
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "fabric") {
      std::string disc, sched;
      unsigned block = 0, minf = 0;
      if (!(is >> sc.fabric.slots >> disc >> block >> minf >> sched)) {
        fail(ln, "malformed fabric line");
      }
      sc.fabric.discipline = parse_discipline(disc, ln);
      sc.fabric.block_mode = block != 0;
      sc.fabric.min_first = minf != 0;
      sc.fabric.schedule = parse_schedule(sched, ln);
      if (sc.fabric.slots < 2 || sc.fabric.slots > hw::kMaxSlots ||
          (sc.fabric.slots & (sc.fabric.slots - 1)) != 0) {
        fail(ln, "slot count must be a power of two in [2, 32]");
      }
    } else if (tag == "batch") {
      if (!(is >> sc.fabric.batch_depth)) fail(ln, "malformed batch line");
      if (sc.fabric.batch_depth > hw::kMaxSlots) {
        fail(ln, "batch depth exceeds the maximum slot count");
      }
    } else if (tag == "global_tags") {
      unsigned v = 0;
      if (!(is >> v)) fail(ln, "malformed global_tags line");
      sc.global_tags = v != 0;
    } else if (tag == "fault_at_grant") {
      if (!(is >> sc.inject_fault_at_grant)) fail(ln, "malformed fault line");
    } else if (tag == "faults") {
      robust::FaultProfile& f = sc.faults;
      if (!(is >> f.seed >> f.pci_fault_per64k >> f.sram_fault_per64k >>
            f.chip_fault_per64k >> f.max_burst >> f.pci_timeout_ns >>
            f.sram_stall_ns >> f.chip_stall_ns >> f.chip_fail_after)) {
        fail(ln, "malformed faults line");
      }
      if (f.seed == 0) fail(ln, "faults record requires a non-zero seed");
      if (f.max_burst == 0) fail(ln, "faults max_burst must be positive");
    } else if (tag == "rank") {
      std::string disc, backend;
      unsigned bands = 0;
      if (!(is >> disc >> backend >> bands)) fail(ln, "malformed rank line");
      sc.rank.enabled = true;
      bool found = false;
      for (unsigned d = 0; d < 6; ++d) {
        if (disc == rank_disc_name(static_cast<RankDisc>(d))) {
          sc.rank.disc = static_cast<RankDisc>(d);
          found = true;
        }
      }
      if (!found) fail(ln, "unknown rank discipline '" + disc + "'");
      found = false;
      for (unsigned b = 0; b < 5; ++b) {
        if (backend == rank_backend_name(static_cast<RankBackend>(b))) {
          sc.rank.backend = static_cast<RankBackend>(b);
          found = true;
        }
      }
      if (!found) fail(ln, "unknown rank backend '" + backend + "'");
      if (bands == 0 || bands > 255) {
        fail(ln, "rank band count must be in [1, 255]");
      }
      sc.rank.bands = static_cast<std::uint8_t>(bands);
    } else if (tag == "streams") {
      if (!(is >> declared_streams)) fail(ln, "malformed streams line");
    } else if (tag == "s") {
      sc.streams.push_back(read_setup(is, ln));
    } else if (tag == "agg") {
      std::size_t n = 0;
      if (!(is >> n)) fail(ln, "malformed agg line");
      sc.aggregation.reserve(n);
    } else if (tag == "g") {
      std::size_t nsets = 0;
      if (!(is >> nsets)) fail(ln, "malformed agg group line");
      std::vector<core::StreamletSet> sets;
      for (std::size_t i = 0; i < nsets; ++i) {
        std::string pair;
        if (!(is >> pair)) fail(ln, "missing streamlets:weight pair");
        const auto colon = pair.find(':');
        if (colon == std::string::npos) fail(ln, "expected streamlets:weight");
        core::StreamletSet st;
        try {
          st.streamlets =
              static_cast<std::uint32_t>(std::stoul(pair.substr(0, colon)));
          st.weight =
              static_cast<std::uint32_t>(std::stoul(pair.substr(colon + 1)));
        } catch (const std::exception&) {
          fail(ln, "malformed streamlets:weight pair '" + pair + "'");
        }
        if (st.streamlets == 0 || st.weight == 0) {
          fail(ln, "streamlets and weight must be positive");
        }
        sets.push_back(st);
      }
      sc.aggregation.push_back(std::move(sets));
    } else if (tag == "events") {
      if (!(is >> declared_events)) fail(ln, "malformed events line");
      sc.events.reserve(declared_events);
    } else if (tag == "a") {
      Event e;
      e.kind = EventKind::kArrival;
      if (!(is >> e.stream)) fail(ln, "malformed arrival");
      sc.events.push_back(e);
    } else if (tag == "t") {
      Event e;
      e.kind = EventKind::kTaggedArrival;
      if (!(is >> e.stream >> e.tag_increment)) {
        fail(ln, "malformed tagged arrival");
      }
      sc.events.push_back(e);
    } else if (tag == "d") {
      sc.events.push_back(Event{});
    } else if (tag == "r") {
      Event e;
      e.kind = EventKind::kReconfig;
      if (!(is >> e.stream)) fail(ln, "malformed reconfig");
      e.setup = read_setup(is, ln);
      sc.events.push_back(e);
    } else if (tag == "expect_digest") {
      std::uint64_t d = 0;
      if (!(is >> d)) fail(ln, "malformed expect_digest");
      tf.expected_digest = d;
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      fail(ln, "unknown record '" + tag + "'");
    }
  }

  if (!saw_end) fail(ln, "missing 'end' record");
  if (sc.streams.size() != declared_streams) {
    fail(ln, "stream count mismatch with 'streams' declaration");
  }
  if (sc.events.size() != declared_events) {
    fail(ln, "event count mismatch with 'events' declaration");
  }
  if (sc.streams.size() != sc.fabric.slots) {
    fail(ln, "scenario must define exactly one stream per slot");
  }
  if (!sc.aggregation.empty() && sc.aggregation.size() > sc.fabric.slots) {
    fail(ln, "aggregation plan covers more slots than the fabric has");
  }
  for (const Event& e : sc.events) {
    if (e.kind != EventKind::kDecide && e.stream >= sc.fabric.slots) {
      fail(ln, "event references stream beyond the slot count");
    }
  }
  return tf;
}

TraceFile parse_string(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

void save_file(const std::string& path, const Scenario& sc,
               std::optional<std::uint64_t> expected_digest) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << serialize(sc, expected_digest);
  if (!out) throw std::runtime_error("write failed: " + path);
}

TraceFile load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return parse(in);
}

}  // namespace ss::testing
