// workload_fuzzer.hpp — seeded randomized scenario generation over the
// full configuration lattice.
//
// Scheduler bugs hide in rare interleavings of admissions, drops, priority
// updates and reconfigurations — exactly the corners hand-picked parameter
// points miss.  The fuzzer samples the lattice the architecture exposes
// (slot count x WR/block x max/min-first x sort schedule x discipline x
// streamlet aggregation bindings) and fills each point with a randomized
// event stream: bursty arrivals, idle gaps, mid-run re-LOADs, fair-queuing
// tag advances.
//
// Determinism is absolute: the generator is a pure function of (seed,
// options, draw index).  The same seed reproduces the same scenario
// sequence byte-for-byte — `tests/seed_stability_test.cpp` pins one golden
// scenario so replay files stay valid across refactors.
//
// Two generation invariants keep scenarios inside the regime where the
// chip and the 64-bit oracle *must* agree (divergences are then always
// bugs, never 16-bit-horizon artifacts — see docs/reproduction.md):
//   * block-mode scenarios use a full sorting schedule (bitonic/odd-even),
//     since the log2(N) shuffle is only a max-finder;
//   * the decide-event budget bounds virtual time well below the 32768
//     serial-comparison horizon of the 16-bit deadline fields.
#pragma once

#include <cstdint>

#include "testing/scenario.hpp"
#include "util/rng.hpp"

namespace ss::testing {

class WorkloadFuzzer {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Approximate number of events per scenario (the horizon guard may
    /// trim the decide count at large slot counts).
    std::size_t events_per_scenario = 1000;
    /// Probability that a scenario carries streamlet aggregation bindings.
    double aggregation_probability = 0.25;
    /// Probability that a scenario contains mid-run reconfig events.
    double reconfig_probability = 0.25;
    /// Also sample the block-mode batch_depth axis (0/1/2/4 grants per
    /// decision cycle).  Off by default: enabling it consumes extra RNG
    /// draws, which would shift every scenario after the first block-mode
    /// one and invalidate the pinned golden seeds.  The fuzz_ss CLI and
    /// the batch property campaign turn it on explicitly.
    bool explore_batch = false;
    /// Probability that a scenario carries a hardware fault plane
    /// (Scenario::faults).  Off by default for the same golden-seed
    /// reason as explore_batch: the extra draws would shift every later
    /// scenario.  The fault campaign turns it on explicitly.
    double fault_probability = 0.0;
    /// Base seed mixed into each generated FaultProfile so fault streams
    /// are decoupled from workload shape (only read when
    /// fault_probability > 0).
    std::uint64_t fault_seed = 0x5eedfa17u;
    /// Also sample the rank-layer axis (Scenario::rank): discipline x
    /// PIFO substrate x SP-PIFO band count.  Off by default for the same
    /// golden-seed reason as explore_batch; the rank draws happen LAST in
    /// next(), so enabling it never shifts the draws shaping the scenario
    /// itself.  The fuzz_ss CLI turns it on with --explore-rank.
    bool explore_rank = false;
  };

  explicit WorkloadFuzzer(const Options& opt);

  /// Generate the next scenario (deterministic in seed and call index).
  [[nodiscard]] Scenario next();

  [[nodiscard]] std::uint64_t scenarios_generated() const { return count_; }

 private:
  [[nodiscard]] StreamSetup random_setup(Discipline d);

  Options opt_;
  Rng rng_;
  std::uint64_t count_ = 0;
};

}  // namespace ss::testing
