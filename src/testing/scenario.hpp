// scenario.hpp — the unit of work of the differential fuzz harness.
//
// A Scenario is a fully self-contained, deterministic description of one
// differential run: a point in the architectural configuration lattice
// (slot count x WR/block x min/max-first x sort schedule x discipline), the
// per-slot stream setups, an optional host-side streamlet aggregation plan,
// and a flat stream of admission/arrival/decision/reconfiguration events.
// Scenarios are what the workload fuzzer generates, what the differential
// executor runs, what the shrinker minimizes, and what trace files
// serialize — one artifact travels the whole pipeline, so any divergence
// is replayable from its file alone.
//
// Every field is plain data: subsetting the event vector always yields
// another valid scenario (the property delta-debugging minimization needs).
#pragma once

#include <cstdint>
#include <vector>

#include "core/aggregation.hpp"
#include "dwcs/reference_scheduler.hpp"
#include "hw/register_block.hpp"
#include "hw/scheduler_chip.hpp"
#include "robust/fault_plan.hpp"

namespace ss::testing {

/// Scheduling discipline mapped onto the unified fabric (Section 2's
/// canonical-architecture claim: one datapath, four disciplines).
enum class Discipline : std::uint8_t {
  kDwcs,        ///< full window-constrained DWCS (all Table-2 rules)
  kEdf,         ///< deadline-only comparison, window fields inert
  kStaticPrio,  ///< pinned deadlines, priority in the denominator field
  kFairTag,     ///< per-packet service tags, update cycle bypassed
};

/// A point in the architectural configuration lattice.
struct FabricPoint {
  unsigned slots = 4;  ///< power of two, 2..32
  Discipline discipline = Discipline::kDwcs;
  bool block_mode = false;  ///< BA block decisions vs WR max-finding
  bool min_first = false;   ///< block emission/circulation from the tail
  hw::SortSchedule schedule = hw::SortSchedule::kBitonic;
  /// Block-mode grant batching: at most this many block entries granted
  /// per decision cycle (0 = whole block).  Serialized as an optional
  /// `batch K` record, so pre-batching trace files parse unchanged.
  unsigned batch_depth = 0;

  friend bool operator==(const FabricPoint&, const FabricPoint&) = default;
};

/// One stream's service constraints, discipline-neutral: the executor maps
/// it onto hw::SlotConfig and dwcs::StreamSpec according to the fabric
/// point's discipline.
struct StreamSetup {
  std::uint16_t period = 1;      ///< request period T_i (packet-times)
  std::uint8_t loss_num = 0;     ///< x_i
  std::uint8_t loss_den = 1;     ///< y_i (priority level in kStaticPrio)
  bool droppable = true;
  std::uint64_t initial_deadline = 1;

  friend bool operator==(const StreamSetup&, const StreamSetup&) = default;
};

enum class EventKind : std::uint8_t {
  kArrival,        ///< one request arrives for `stream` at current vtime
  kTaggedArrival,  ///< fair-queuing arrival; advances the stream's tag clock
  kDecide,         ///< run one decision cycle on every implementation
  kReconfig,       ///< systems software re-LOADs `stream` with `setup`
};

struct Event {
  EventKind kind = EventKind::kDecide;
  std::uint32_t stream = 0;       ///< kArrival/kTaggedArrival/kReconfig
  std::uint32_t tag_increment = 1;///< kTaggedArrival: service-tag advance
  StreamSetup setup{};            ///< kReconfig payload

  friend bool operator==(const Event&, const Event&) = default;
};

/// Software discipline expressed as a rank function (src/pifo/) for the
/// rank-layer differential: the rank form replays the scenario's event
/// stream against its bespoke sched/ counterpart.
enum class RankDisc : std::uint8_t {
  kFcfs,
  kStaticPrio,
  kEdf,
  kWfq,
  kVirtualClock,
  kSfq,
};

/// PIFO substrate carrying the rank form: one of the four exact hardware
/// structures (packet-for-packet equivalence required) or the SP-PIFO
/// approximation (conservation required, inversions counted).
enum class RankBackend : std::uint8_t {
  kBinaryHeap,
  kPipelinedHeap,
  kSystolic,
  kShiftRegister,
  kSpPifo,
};

/// Rank-layer axis of a scenario.  Disabled by default so pre-rank trace
/// files and golden digests are untouched; serialized as an optional
/// `rank` record.
struct RankConfig {
  bool enabled = false;
  RankDisc disc = RankDisc::kFcfs;
  RankBackend backend = RankBackend::kBinaryHeap;
  std::uint8_t bands = 8;  ///< SP-PIFO band count (kSpPifo only)

  friend bool operator==(const RankConfig&, const RankConfig&) = default;
};

struct Scenario {
  FabricPoint fabric;
  std::vector<StreamSetup> streams;  ///< one per slot
  std::vector<Event> events;

  /// Host-side aggregation plan: `aggregation[slot]` lists the streamlet
  /// sets bound to that slot (empty vector = slot not aggregated; empty
  /// outer vector = no aggregation in this scenario).
  std::vector<std::vector<core::StreamletSet>> aggregation;

  /// Fair-tag scenarios only: when true, service tags are drawn from one
  /// global clock (each tagged arrival advances it), making every tag
  /// unique across streams.  Unique tags pin the fabric to a fixed total
  /// order, which is the precondition for cross-checking the hwpq
  /// variants — with equal tags the fabric's FCFS tie-break consults the
  /// slot arrival registers, which refresh on circulation, an order no
  /// immutable-key priority queue can realize (the paper's Section-3
  /// argument in miniature).  When false, tags advance per-stream clocks
  /// and ties exercise the FCFS path in the chip-vs-oracle diff instead.
  bool global_tags = false;

  /// Fault injection for validating the shrink/replay pipeline.  With the
  /// fault plane disabled (faults.seed == 0), a non-zero value makes the
  /// executor deliberately corrupt the oracle's view of the K-th granted
  /// frame (1-based), manufacturing a divergence at a known point.  With
  /// the fault plane enabled it instead forces failover to the software
  /// path at the K-th grant — the recovery-era reading of the same knob.
  /// Serialized with the scenario so a minimized reproducer still
  /// reproduces.
  std::uint64_t inject_fault_at_grant = 0;

  /// Rank-layer differential axis (rank.enabled == false = off).
  RankConfig rank{};

  /// Hardware fault plane for this run (seed == 0 = disabled).  The
  /// contract under faults: the guarded chip either recovers within the
  /// retry bound or fails over, and the grant sequence stays
  /// oracle-equivalent either way — so the differential digest of a
  /// faulted run equals the fault-free digest.
  robust::FaultProfile faults{};

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Map a discipline-neutral setup onto the hardware slot configuration.
[[nodiscard]] hw::SlotConfig to_slot_config(Discipline d,
                                            const StreamSetup& s);

/// Map a discipline-neutral setup onto the software oracle's stream spec.
[[nodiscard]] dwcs::StreamSpec to_stream_spec(Discipline d,
                                              const StreamSetup& s);

}  // namespace ss::testing
