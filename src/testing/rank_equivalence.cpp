#include "testing/rank_equivalence.hpp"

#include <set>
#include <sstream>

#include "pifo/exact_pifo.hpp"
#include "pifo/rank_library.hpp"
#include "pifo/sp_pifo.hpp"
#include "sched/edf.hpp"
#include "sched/fcfs.hpp"
#include "sched/sfq.hpp"
#include "sched/static_prio.hpp"
#include "sched/virtual_clock.hpp"
#include "sched/wfq.hpp"

namespace ss::testing {
namespace {

/// Digest field tag for rank-layer pops (the chip diff uses 1..5).
enum : std::uint8_t { kTagRank = 6 };

/// SFQ bucket count used by both sides of the differential.
constexpr std::uint32_t kSfqBuckets = 8;

/// Power-of-two weight/rate derived from a stream setup — the fixed-point
/// exactness precondition of rank_library.hpp.
double pot_weight(const StreamSetup& s) {
  return static_cast<double>(1u << (s.loss_den & 3));
}

std::string pkt_str(const std::optional<sched::Pkt>& p) {
  if (!p) return "none";
  std::ostringstream os;
  os << "{stream=" << p->stream << " seq=" << p->seq << " bytes=" << p->bytes
     << " arr=" << p->arrival_ns << "}";
  return os.str();
}

}  // namespace

const char* rank_disc_name(RankDisc d) {
  switch (d) {
    case RankDisc::kFcfs: return "fcfs";
    case RankDisc::kStaticPrio: return "prio";
    case RankDisc::kEdf: return "edf";
    case RankDisc::kWfq: return "wfq";
    case RankDisc::kVirtualClock: return "vclock";
    case RankDisc::kSfq: return "sfq";
  }
  return "?";
}

const char* rank_backend_name(RankBackend b) {
  switch (b) {
    case RankBackend::kBinaryHeap: return "binheap";
    case RankBackend::kPipelinedHeap: return "pipeheap";
    case RankBackend::kSystolic: return "systolic";
    case RankBackend::kShiftRegister: return "shiftreg";
    case RankBackend::kSpPifo: return "sppifo";
  }
  return "?";
}

RankHarness make_rank_harness(const RankConfig& cfg,
                              const std::vector<StreamSetup>& streams,
                              std::size_t capacity) {
  RankHarness h;

  switch (cfg.disc) {
    case RankDisc::kFcfs: {
      h.fn = std::make_unique<pifo::FcfsRank>();
      h.bespoke = std::make_unique<sched::Fcfs>();
      break;
    }
    case RankDisc::kStaticPrio: {
      auto fn = std::make_unique<pifo::StaticPrioRank>();
      auto sw = std::make_unique<sched::StaticPrio>();
      for (std::size_t i = 0; i < streams.size(); ++i) {
        const auto s = static_cast<std::uint32_t>(i);
        fn->set_priority(s, streams[i].loss_den);
        sw->set_priority(s, streams[i].loss_den);
      }
      h.fn = std::move(fn);
      h.bespoke = std::move(sw);
      break;
    }
    case RankDisc::kEdf: {
      auto fn = std::make_unique<pifo::EdfRank>();
      auto sw = std::make_unique<sched::Edf>();
      for (std::size_t i = 0; i < streams.size(); ++i) {
        const auto s = static_cast<std::uint32_t>(i);
        fn->add_stream(s, streams[i].period, streams[i].initial_deadline);
        sw->add_stream(s, streams[i].period, streams[i].initial_deadline);
      }
      h.fn = std::move(fn);
      h.bespoke = std::move(sw);
      break;
    }
    case RankDisc::kWfq: {
      auto fn = std::make_unique<pifo::WfqRank>();
      auto sw = std::make_unique<sched::Wfq>();
      for (std::size_t i = 0; i < streams.size(); ++i) {
        const auto s = static_cast<std::uint32_t>(i);
        fn->set_weight(s, pot_weight(streams[i]));
        sw->set_weight(s, pot_weight(streams[i]));
      }
      h.fn = std::move(fn);
      h.bespoke = std::move(sw);
      break;
    }
    case RankDisc::kVirtualClock: {
      auto fn = std::make_unique<pifo::VirtualClockRank>();
      auto sw = std::make_unique<sched::VirtualClock>();
      for (std::size_t i = 0; i < streams.size(); ++i) {
        const auto s = static_cast<std::uint32_t>(i);
        fn->set_rate(s, pot_weight(streams[i]));
        sw->set_rate(s, pot_weight(streams[i]));
      }
      h.fn = std::move(fn);
      h.bespoke = std::move(sw);
      break;
    }
    case RankDisc::kSfq: {
      h.fn = std::make_unique<pifo::SfqRank>(kSfqBuckets);
      h.bespoke = std::make_unique<sched::Sfq>(kSfqBuckets, 0);
      break;
    }
  }

  if (cfg.backend == RankBackend::kSpPifo) {
    h.backend = std::make_unique<pifo::SpPifo>(capacity, cfg.bands);
    h.exact = false;
  } else {
    const auto kind = static_cast<hwpq::PqKind>(cfg.backend);
    h.backend = std::make_unique<pifo::ExactPifo>(kind, capacity);
    h.exact = true;
  }
  return h;
}

RankDiffOutcome run_rank_ops(RankHarness& h, const std::vector<RankOp>& ops,
                             Fnv1a64* hash) {
  RankDiffOutcome out;

  // Queued ranks (for inverted-pop counting) and, in the SP-PIFO regime,
  // the served (stream, seq) multisets for the conservation check.
  std::multiset<std::uint64_t> queued;
  std::multiset<std::pair<std::uint32_t, std::uint64_t>> served_rank;
  std::multiset<std::pair<std::uint32_t, std::uint64_t>> served_sw;

  auto diverge = [&](std::size_t i, const std::string& detail) {
    out.diverged = true;
    out.op_index = i;
    out.detail = detail;
  };

  auto serve_one = [&](std::size_t i) {
    const auto r = h.backend->pop();
    const auto b = h.bespoke->dequeue(0);
    if (r) {
      h.fn->note_served(r->rank);
      ++out.served;
      if (r->rank > *queued.begin()) ++out.inversions;
      queued.erase(queued.find(r->rank));
    }
    if (hash) {
      hash->mix_byte(kTagRank);
      hash->mix(r ? 1 + std::uint64_t{r->pkt.stream} : 0);
      hash->mix(r ? r->pkt.seq : 0);
    }
    if (h.exact) {
      const std::optional<sched::Pkt> rp =
          r ? std::optional<sched::Pkt>(r->pkt) : std::nullopt;
      if (rp != b) {
        diverge(i, h.backend->name() + " served " + pkt_str(rp) + " but " +
                       h.bespoke->name() + " served " + pkt_str(b));
      }
    } else {
      if (r.has_value() != b.has_value()) {
        diverge(i, std::string("backlog disagreement: ") + h.backend->name() +
                       (r ? " busy" : " idle") + " vs " + h.bespoke->name() +
                       (b ? " busy" : " idle"));
      }
      if (r) served_rank.emplace(r->pkt.stream, r->pkt.seq);
      if (b) served_sw.emplace(b->stream, b->seq);
    }
  };

  for (std::size_t i = 0; i < ops.size() && !out.diverged; ++i) {
    const RankOp& op = ops[i];
    if (op.enqueue) {
      const std::uint64_t rank = h.fn->rank(op.pkt);
      h.backend->push(op.pkt, rank);
      h.bespoke->enqueue(op.pkt);
      queued.insert(rank);
    } else {
      serve_one(i);
    }
  }

  // Drain both sides: a campaign ends when nothing is left queued, and a
  // backlog mismatch here is itself a divergence.
  while (!out.diverged &&
         (h.backend->size() > 0 || h.bespoke->backlog() > 0)) {
    serve_one(ops.size());
  }

  if (!out.diverged && !h.exact && served_rank != served_sw) {
    diverge(ops.size(), h.backend->name() +
                            " served a different packet multiset than " +
                            h.bespoke->name() + " (conservation violation)");
  }
  return out;
}

std::vector<RankOp> ops_from_events(const std::vector<Event>& events,
                                    std::vector<std::size_t>* event_of) {
  std::vector<RankOp> ops;
  ops.reserve(events.size());
  if (event_of) event_of->clear();
  std::uint64_t arrival_ordinal = 0;
  for (std::size_t ei = 0; ei < events.size(); ++ei) {
    const Event& e = events[ei];
    RankOp op;
    switch (e.kind) {
      case EventKind::kArrival:
      case EventKind::kTaggedArrival:
        op.enqueue = true;
        op.pkt.stream = e.stream;
        op.pkt.bytes = 64 * (1 + (e.stream & 3));
        op.pkt.arrival_ns = ei;
        op.pkt.seq = arrival_ordinal++;
        break;
      case EventKind::kDecide:
        op.enqueue = false;
        break;
      case EventKind::kReconfig:
        continue;  // no rank-layer counterpart (the resort argument)
    }
    ops.push_back(op);
    if (event_of) event_of->push_back(ei);
  }
  return ops;
}

}  // namespace ss::testing
