// differential_executor.hpp — lock-step execution of every scheduler
// implementation over one event stream.
//
// The repository's central correctness claim is that the cycle-level
// hw::SchedulerChip and the independently written dwcs::ReferenceScheduler
// agree decision-for-decision.  The executor turns that claim into a
// machine-checkable predicate over arbitrary scenarios: it drives both
// through the same admission/arrival/decide/reconfig events and diffs
// idle flags, grant sequences (slot, emission vtime, deadline verdict),
// circulated IDs, drop sets, per-stream counters, backlogs and virtual
// time.  A batch-drained block decision (fabric.batch_depth = K) is
// compared grant-by-grant with per-grant emission vtimes, i.e. exactly as
// K sequential winner grants — the digest of a batched decision stream is
// therefore directly comparable to the same stream granted one winner per
// pass.  In fair-queuing scenarios it additionally drives all four
// related-work hardware priority queues (hwpq::*) through the same tagged
// stream — with unique keys every structure realizes the same total order,
// so their pop sequence must match the fabric's grant sequence.  When the
// scenario carries an aggregation plan, host-side streamlet picks are fed
// from the grant stream and the round-robin/weighted-share invariants are
// checked at the end.
//
// The executor is deterministic and side-effect free: the same scenario
// always produces the same RunResult (including the FNV-1a digest of the
// chip's decision stream), which is what the shrinker binary-searches over
// and what replay files assert against.
#pragma once

#include <cstdint>
#include <string>

#include "robust/recovery.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/metrics.hpp"
#include "testing/scenario.hpp"

namespace ss::testing {

struct RunResult {
  bool diverged = false;
  /// Index into Scenario::events of the event at which the divergence was
  /// detected (== events.size() for end-of-run counter mismatches).
  std::size_t event_index = 0;
  std::uint64_t decision_cycle = 0;  ///< decisions completed at detection
  std::string detail;                ///< human-readable first difference

  // Coverage accounting.
  std::uint64_t decisions = 0;  ///< differential decision cycles compared
  std::uint64_t grants = 0;     ///< frames granted by the chip
  std::uint64_t drops = 0;      ///< late heads dropped by the chip
  std::uint64_t arrivals = 0;   ///< requests fed to both implementations
  bool hwpq_checked = false;    ///< hwpq variants participated in the diff

  // Rank-layer differential (scenarios with rank.enabled): the scenario's
  // event stream replayed through a rank-expressed discipline on a PIFO
  // substrate against its bespoke sched/ counterpart.  Exact backends
  // require packet-for-packet identity; SP-PIFO requires conservation and
  // reports its inverted pops here.
  bool rank_checked = false;
  std::uint64_t rank_served = 0;      ///< packets served by the rank form
  std::uint64_t rank_inversions = 0;  ///< inverted pops (0 on exact)

  // Fault-plane outcome (all zero/false when the scenario's fault plane is
  // disabled).  Faults must not change the schedule: a faulted run's
  // digest equals the fault-free digest of the same scenario.
  std::uint64_t faults_injected = 0;  ///< transactions failed by the plan
  robust::RecoveryStats robust{};     ///< retries/recoveries/exhaustions
  bool failed_over = false;           ///< run finished on the software path

  /// FNV-1a fingerprint of the chip's decision stream and final counters
  /// (up to the divergence point, when one occurs).
  std::uint64_t digest = 0;

  /// Diagnosis context, populated only when the run diverged: the chip
  /// tracer's last rendered decision cycles (the "waveform" leading up to
  /// the failure) and a single-line JSON snapshot of the run's metrics.
  std::string chip_trace_tail;
  std::string metrics_json;

  /// Chrome trace-event JSON of the retained decision-cycle window (only
  /// when Options::export_chrome_trace; empty otherwise).
  std::string chip_trace_chrome_json;

  /// ss-audit-v1 snapshot taken at the divergence point (only when
  /// Options::audit was attached and the run diverged; empty otherwise).
  /// The session itself is also dumped with cause "divergence".
  std::string audit_json;
};

class DifferentialExecutor {
 public:
  struct Options {
    /// Cross-check the hwpq variants in fair-tag scenarios (WR mode only;
    /// disabled automatically once a reconfig event invalidates the queue
    /// contents).
    bool check_hwpq = true;
    /// Validate aggregation round-robin/weighted-share invariants when the
    /// scenario carries a plan.
    bool check_aggregation = true;
    /// Retain the chip tracer's most recent decision cycles so divergence
    /// reports carry the waveform leading up to the failure.
    std::size_t trace_depth = 8;
    /// Also render the retained window as Chrome trace-event JSON into
    /// RunResult::chip_trace_chrome_json (drivers raise trace_depth when
    /// exporting for Perfetto).
    bool export_chrome_trace = false;
    /// Accumulate chip metrics for the run into this registry when set
    /// (fuzz/replay drivers pass one to get a metrics snapshot attached to
    /// divergence reports and --metrics-json output).
    telemetry::MetricsRegistry* metrics = nullptr;
    /// Decision-audit session: rule provenance + the flight-recorder ring
    /// for the run.  The executor calls begin_run() (the chip's counters
    /// restart each scenario while the profile accumulates) and dumps the
    /// session with cause "divergence" when the diff fails.  Must be sized
    /// for the largest scenario when reused across scenarios.
    telemetry::AuditSession* audit = nullptr;
  };

  DifferentialExecutor() = default;
  explicit DifferentialExecutor(Options opt) : opt_(opt) {}

  /// Run the scenario to completion or first divergence.
  [[nodiscard]] RunResult run(const Scenario& sc) const;

 private:
  Options opt_{};
};

}  // namespace ss::testing
