// batch_equivalence.hpp — property harness for block-batched draining.
//
// The block-batched transmission pipeline claims a semantic identity: a
// decision cycle that grants the first K pending lanes of the sorted block
// and drains them in one Transmission Engine pass is observationally
// equivalent to K sequential winner-only grants.  This harness runs a
// fuzzer Scenario through the real host pipeline — SchedulerChip +
// QueueManager rings + TransmissionEngine::transmit_block — at a chosen
// `batch_depth`, recording the per-stream sequence numbers of every frame
// that left the link (recovered from the frames actually popped off the
// rings, not from shadow bookkeeping), every frame dropped late, and every
// frame still queued at the end.  `check_batch_equivalence` then compares
// two such runs:
//
//   * per-stream FIFO: transmitted and dropped sequence numbers are each
//     strictly increasing, disjoint, and jointly cover exactly the frames
//     consumed from the ring (no loss, no duplication, no reordering);
//   * permutation-free prefix match: for non-droppable streams, the
//     shorter run's per-stream transmit order is a literal prefix of the
//     longer run's — same packets, same order.  Droppable streams are
//     exempt from the cross-depth clause (different batch depths walk
//     different virtual-time trajectories, so *which* heads expire
//     legitimately differs), but still FIFO-checked within each run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "testing/scenario.hpp"

namespace ss::testing {

/// One pipeline run's observable output.
struct PipelineRun {
  unsigned batch_depth = 0;
  std::uint64_t decisions = 0;
  std::uint64_t grants = 0;
  std::uint64_t spurious = 0;  ///< grants that found an empty ring
  std::vector<std::uint64_t> produced;              ///< frames offered
  std::vector<std::vector<std::uint64_t>> tx_seq;   ///< link order, per stream
  std::vector<std::vector<std::uint64_t>> drop_seq; ///< late drops, per stream
  std::vector<std::uint64_t> leftover;              ///< still in ring at end
};

/// Run `sc` through chip + QM + TE with `fabric.batch_depth` overridden to
/// `batch_depth`.  The scenario must be block-mode with a full sorting
/// schedule (what the fuzzer generates for block mode).
[[nodiscard]] PipelineRun run_block_pipeline(const Scenario& sc,
                                             unsigned batch_depth);

/// Within-run integrity: FIFO order, no duplication, conservation
/// (transmitted + dropped + leftover = produced, per stream).  Returns an
/// empty string on success, else a human-readable violation.
[[nodiscard]] std::string check_run_integrity(const Scenario& sc,
                                              const PipelineRun& run);

/// Cross-run equivalence: `a` and `b` are the same scenario at different
/// batch depths.  Checks both runs' integrity plus the prefix-match clause
/// for non-droppable streams.  Empty string on success.
[[nodiscard]] std::string check_batch_equivalence(const Scenario& sc,
                                                  const PipelineRun& a,
                                                  const PipelineRun& b);

}  // namespace ss::testing
