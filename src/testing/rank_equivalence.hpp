// rank_equivalence.hpp — the rank-layer differential mode: drive a
// rank-expressed discipline (src/pifo/) and its bespoke sched/
// counterpart through one operation stream and compare.
//
// Two comparison regimes, chosen by the substrate:
//
//  * EXACT backends (a true PIFO over any hwpq structure): the rank form
//    must match the bespoke discipline PACKET FOR PACKET — every dequeue
//    returns the identical Pkt (stream, bytes, arrival, seq) or both
//    return empty.  This is the strongest form of the "disciplines are
//    rank functions" claim and what tests/pifo_equivalence_test.cpp pins
//    over 10k-packet campaigns.
//
//  * SP-PIFO: inversions are expected, so packet-for-packet equality is
//    the wrong predicate.  The harness instead checks CONSERVATION (the
//    multiset of packets served equals the bespoke discipline's, once
//    both drain) and counts inverted pops — pops whose rank exceeds the
//    smallest rank still queued — for the bounded-inversion property
//    tests and the fuzzer's coverage accounting.
//
// The harness works at the (RankFn, PifoBackend) level rather than
// through the RankDiscipline adapter so it can observe ranks; the adapter
// is what benches and fairness tests use.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pifo/pifo.hpp"
#include "pifo/rank_fn.hpp"
#include "sched/discipline.hpp"
#include "testing/scenario.hpp"
#include "util/hash.hpp"

namespace ss::testing {

/// One step of a rank campaign: admit `pkt` or serve the next packet.
struct RankOp {
  bool enqueue = false;
  sched::Pkt pkt{};
};

struct RankDiffOutcome {
  bool diverged = false;
  std::size_t op_index = 0;  ///< index into the op stream at detection
  std::string detail;
  std::uint64_t served = 0;      ///< packets served by the rank form
  std::uint64_t inversions = 0;  ///< inverted pops (always 0 on exact)
};

/// The two sides of one rank differential plus its comparison regime.
struct RankHarness {
  std::unique_ptr<pifo::RankFn> fn;
  std::unique_ptr<pifo::PifoBackend> backend;
  std::unique_ptr<sched::Discipline> bespoke;
  bool exact = true;  ///< packet-for-packet regime (false for SP-PIFO)
};

/// Build both sides with IDENTICAL parameters derived from the scenario's
/// per-stream setups: WFQ weights and virtual-clock rates are the
/// power-of-two 1 << (loss_den & 3) (the fixed-point exactness
/// precondition), EDF takes (period, initial_deadline) verbatim, static
/// priority takes loss_den as the level, SFQ uses 8 hash buckets.
/// `capacity` bounds the backend (use the campaign's arrival count).
[[nodiscard]] RankHarness make_rank_harness(
    const RankConfig& cfg, const std::vector<StreamSetup>& streams,
    std::size_t capacity);

/// Run the op stream (plus a full end-of-stream drain) through both
/// sides.  When `hash` is non-null every served (stream, seq) — and every
/// empty pop — is mixed under digest tag 6, extending the differential
/// digest to the rank layer.
[[nodiscard]] RankDiffOutcome run_rank_ops(RankHarness& h,
                                           const std::vector<RankOp>& ops,
                                           Fnv1a64* hash = nullptr);

/// Translate a scenario's event stream into rank-campaign ops: arrivals
/// (tagged or not) become enqueues of a synthetic Pkt — bytes
/// 64 * (1 + (stream & 3)), arrival_ns = event index, seq = arrival
/// ordinal — and every decide event becomes one dequeue.  Reconfig events
/// are skipped (the rank layer has no mid-run reparameterization, by
/// design: the paper's resort argument).  `event_of[i]` maps op i back to
/// its source event index for divergence reports.
[[nodiscard]] std::vector<RankOp> ops_from_events(
    const std::vector<Event>& events, std::vector<std::size_t>* event_of);

[[nodiscard]] const char* rank_disc_name(RankDisc d);
[[nodiscard]] const char* rank_backend_name(RankBackend b);

}  // namespace ss::testing
