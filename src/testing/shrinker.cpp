#include "testing/shrinker.hpp"

#include <stdexcept>
#include <vector>

namespace ss::testing {
namespace {

Scenario with_events(const Scenario& base, std::vector<Event> events) {
  Scenario sc = base;
  sc.events = std::move(events);
  return sc;
}

}  // namespace

ShrinkResult shrink(const Scenario& failing, const DifferentialExecutor& ex) {
  ShrinkResult res;
  res.initial_events = failing.events.size();

  RunResult base = ex.run(failing);
  ++res.executor_runs;
  if (!base.diverged) {
    throw std::invalid_argument("shrink(): scenario does not diverge");
  }

  std::vector<Event> events = failing.events;
  RunResult current = base;

  // Everything after the detection point is irrelevant by definition (the
  // executor stops at the first divergence and never looks past it).
  if (current.event_index + 1 < events.size()) {
    std::vector<Event> truncated(
        events.begin(),
        events.begin() +
            static_cast<std::ptrdiff_t>(current.event_index + 1));
    const RunResult r = ex.run(with_events(failing, truncated));
    ++res.executor_runs;
    if (r.diverged) {
      events = std::move(truncated);
      current = r;
    }
  }

  // ddmin: remove chunks of decreasing size until 1-minimal.
  std::size_t chunk = events.size() / 2;
  if (chunk == 0) chunk = 1;
  while (true) {
    bool removed_any = false;
    std::size_t start = 0;
    while (start < events.size()) {
      const std::size_t len = std::min(chunk, events.size() - start);
      std::vector<Event> candidate;
      candidate.reserve(events.size() - len);
      candidate.insert(candidate.end(), events.begin(),
                       events.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(
          candidate.end(),
          events.begin() + static_cast<std::ptrdiff_t>(start + len),
          events.end());
      const RunResult r = ex.run(with_events(failing, candidate));
      ++res.executor_runs;
      if (r.diverged) {
        events = std::move(candidate);
        current = r;
        removed_any = true;
        // Do not advance: the chunk now at `start` is new material.
      } else {
        start += len;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;  // 1-minimal fixpoint reached
    } else {
      chunk = (chunk + 1) / 2;
    }
  }

  res.minimal = with_events(failing, std::move(events));
  res.divergence = current;
  res.final_events = res.minimal.events.size();
  return res;
}

}  // namespace ss::testing
