#include "testing/scenario.hpp"

namespace ss::testing {

hw::SlotConfig to_slot_config(Discipline d, const StreamSetup& s) {
  hw::SlotConfig c;
  c.period = s.period;
  c.loss_num = s.loss_num;
  c.loss_den = s.loss_den;
  c.droppable = s.droppable;
  c.initial_deadline = hw::Deadline{s.initial_deadline};
  switch (d) {
    case Discipline::kDwcs:
      c.mode = hw::SlotMode::kDwcs;
      break;
    case Discipline::kEdf:
      c.mode = hw::SlotMode::kEdf;
      break;
    case Discipline::kStaticPrio:
      // Static priority: deadlines pinned equal, no period-driven updates,
      // the priority level rides in the loss-denominator field.
      c.mode = hw::SlotMode::kStaticPrio;
      c.period = 0;
      c.loss_num = 0;
      c.initial_deadline = hw::Deadline{0};
      break;
    case Discipline::kFairTag:
      // Per-packet tags own the deadline field; period must not advance it.
      c.mode = hw::SlotMode::kFairTag;
      c.period = 0;
      c.initial_deadline = hw::Deadline{0};
      break;
  }
  return c;
}

dwcs::StreamSpec to_stream_spec(Discipline d, const StreamSetup& s) {
  dwcs::StreamSpec sp;
  sp.period = s.period;
  sp.loss_num = s.loss_num;
  sp.loss_den = s.loss_den;
  sp.droppable = s.droppable;
  sp.initial_deadline = s.initial_deadline;
  switch (d) {
    case Discipline::kDwcs:
      sp.mode = dwcs::StreamMode::kDwcs;
      break;
    case Discipline::kEdf:
      sp.mode = dwcs::StreamMode::kEdf;
      break;
    case Discipline::kStaticPrio:
      sp.mode = dwcs::StreamMode::kStaticPrio;
      sp.period = 0;
      sp.loss_num = 0;
      sp.initial_deadline = 0;
      break;
    case Discipline::kFairTag:
      sp.mode = dwcs::StreamMode::kFairTag;
      sp.period = 0;
      sp.initial_deadline = 0;
      break;
  }
  return sp;
}

}  // namespace ss::testing
