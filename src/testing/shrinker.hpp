// shrinker.hpp — minimization of diverging event streams.
//
// A raw fuzz failure arrives wrapped in a thousand irrelevant events.  The
// shrinker reduces it to a minimal reproducer by delta debugging over the
// event vector: binary-search-style chunk removal (halves, quarters, ...,
// single events), re-running the differential executor on each candidate
// and keeping any subsequence that still diverges, iterating to a
// fixpoint.  Scenario subsetting is always valid by construction (every
// event is self-contained), so no repair pass is needed.
//
// The result is 1-minimal: removing any single remaining event makes the
// divergence disappear.  Serialized via trace_io, it becomes the
// one-command deterministic repro the CLI's replay mode consumes.
#pragma once

#include <cstdint>

#include "testing/differential_executor.hpp"
#include "testing/scenario.hpp"

namespace ss::testing {

struct ShrinkResult {
  Scenario minimal;
  RunResult divergence;          ///< executor result on the minimal scenario
  std::size_t initial_events = 0;
  std::size_t final_events = 0;
  std::uint64_t executor_runs = 0;  ///< candidate evaluations performed
};

/// Minimize `failing` (which must diverge under `ex`); throws
/// std::invalid_argument if it does not diverge.
[[nodiscard]] ShrinkResult shrink(const Scenario& failing,
                                  const DifferentialExecutor& ex);

}  // namespace ss::testing
