// trace_io.hpp — deterministic (de)serialization of fuzz scenarios.
//
// A replay file is the single source of truth for reproducing a failure:
// it carries the full scenario (fabric point, stream setups, aggregation
// plan, event stream, injected fault) plus, optionally, the decision-
// stream digest the capturing run observed, so a replay can confirm it
// reproduced the *same* behaviour and not merely *a* behaviour.
//
// The format is line-oriented text with a version header.  Serialization
// is byte-deterministic: no timestamps, no pointers, no locale-dependent
// formatting — the same scenario always produces the same bytes, which is
// what makes "same seed => byte-identical trace" testable and keeps golden
// trace files stable across refactors (tests/seed_stability_test.cpp pins
// one).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "testing/scenario.hpp"

namespace ss::testing {

/// Parsed contents of a replay file.
struct TraceFile {
  Scenario scenario;
  /// Decision-stream digest recorded when the trace was captured (absent
  /// in hand-written scenarios).
  std::optional<std::uint64_t> expected_digest;
};

/// Serialize to the versioned text format (byte-deterministic).
[[nodiscard]] std::string serialize(
    const Scenario& sc,
    std::optional<std::uint64_t> expected_digest = std::nullopt);

/// Parse a trace; throws std::runtime_error with a line-numbered message
/// on malformed input.
[[nodiscard]] TraceFile parse(std::istream& in);
[[nodiscard]] TraceFile parse_string(const std::string& text);

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void save_file(const std::string& path, const Scenario& sc,
               std::optional<std::uint64_t> expected_digest = std::nullopt);
[[nodiscard]] TraceFile load_file(const std::string& path);

}  // namespace ss::testing
