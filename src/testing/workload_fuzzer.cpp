#include "testing/workload_fuzzer.hpp"

#include <algorithm>

namespace ss::testing {
namespace {

/// Virtual time must stay well inside the 16-bit serial horizon (32768):
/// a decide event advances vtime by at most `slots` packet-times in block
/// mode and 1 in WR mode.
constexpr std::uint64_t kVtimeBudget = 16000;

constexpr unsigned kSlotChoices[] = {2, 4, 8, 16, 32};

}  // namespace

WorkloadFuzzer::WorkloadFuzzer(const Options& opt)
    : opt_(opt), rng_(opt.seed) {}

StreamSetup WorkloadFuzzer::random_setup(Discipline d) {
  StreamSetup s;
  s.period = static_cast<std::uint16_t>(1 + rng_.below(6));
  const auto x = static_cast<std::uint8_t>(rng_.below(3));
  s.loss_num = x;
  s.loss_den = static_cast<std::uint8_t>(x + 1 + rng_.below(3));
  s.droppable = rng_.chance(0.5);
  s.initial_deadline = 1 + rng_.below(10);
  if (d == Discipline::kStaticPrio) {
    // The denominator field carries the priority level (1..6).
    s.loss_den = static_cast<std::uint8_t>(1 + rng_.below(6));
  }
  return s;
}

Scenario WorkloadFuzzer::next() {
  ++count_;
  Scenario sc;

  // --- fabric point -------------------------------------------------------
  sc.fabric.slots = kSlotChoices[rng_.below(std::size(kSlotChoices))];
  switch (rng_.below(4)) {
    case 0: sc.fabric.discipline = Discipline::kDwcs; break;
    case 1: sc.fabric.discipline = Discipline::kEdf; break;
    case 2: sc.fabric.discipline = Discipline::kStaticPrio; break;
    default: sc.fabric.discipline = Discipline::kFairTag; break;
  }
  sc.fabric.block_mode = rng_.chance(0.5);
  sc.fabric.min_first = sc.fabric.block_mode && rng_.chance(0.5);
  if (sc.fabric.block_mode) {
    // Block order parity with the oracle needs a full sorting network.
    sc.fabric.schedule = rng_.chance(0.8) ? hw::SortSchedule::kBitonic
                                          : hw::SortSchedule::kOddEven;
    if (opt_.explore_batch) {
      // 0 keeps the classic whole-block grant; 1 is the winner-only
      // degenerate point (WR expressed on the block datapath).
      constexpr unsigned kDepths[] = {0, 1, 2, 4};
      sc.fabric.batch_depth = kDepths[rng_.below(std::size(kDepths))];
    }
  } else {
    const auto pick = rng_.below(4);
    sc.fabric.schedule = pick < 2 ? hw::SortSchedule::kPerfectShuffle
                        : pick == 2 ? hw::SortSchedule::kBitonic
                                    : hw::SortSchedule::kOddEven;
  }

  // Fair-tag scenarios split between globally-unique tags (enables the
  // five-way chip/oracle/hwpq diff) and per-stream tag clocks (exercises
  // the equal-tag FCFS path in the chip-vs-oracle diff).
  sc.global_tags = sc.fabric.discipline == Discipline::kFairTag &&
                   rng_.chance(0.5);

  // --- streams ------------------------------------------------------------
  sc.streams.reserve(sc.fabric.slots);
  for (unsigned i = 0; i < sc.fabric.slots; ++i) {
    sc.streams.push_back(random_setup(sc.fabric.discipline));
  }

  // --- aggregation bindings ------------------------------------------------
  if (rng_.chance(opt_.aggregation_probability)) {
    sc.aggregation.resize(sc.fabric.slots);
    for (unsigned s = 0; s < sc.fabric.slots; ++s) {
      if (!rng_.chance(0.5)) continue;  // this slot stays unaggregated
      const auto nsets = 1 + rng_.below(3);
      for (std::uint64_t k = 0; k < nsets; ++k) {
        core::StreamletSet set;
        set.streamlets = static_cast<std::uint32_t>(1 + rng_.below(8));
        set.weight = static_cast<std::uint32_t>(1 + rng_.below(4));
        sc.aggregation[s].push_back(set);
      }
    }
    // Normalize "nothing actually bound" back to "no aggregation".
    const bool any = std::any_of(sc.aggregation.begin(), sc.aggregation.end(),
                                 [](const auto& v) { return !v.empty(); });
    if (!any) sc.aggregation.clear();
  }

  // --- fault plane ----------------------------------------------------------
  // Strictly gated so the default configuration draws nothing extra (the
  // golden-seed invariant explore_batch documents).  Generated profiles
  // keep max_burst within the default retry bound, so every episode is
  // recoverable unless the chip is drawn to die outright.
  if (opt_.fault_probability > 0) {
    if (rng_.chance(opt_.fault_probability)) {
      robust::FaultProfile& f = sc.faults;
      f.seed = opt_.fault_seed ^ (count_ * 0x9e3779b97f4a7c15ull);
      if (f.seed == 0) f.seed = 1;  // 0 means "disabled"
      f.pci_fault_per64k = static_cast<std::uint32_t>(rng_.below(2048));
      f.sram_fault_per64k = static_cast<std::uint32_t>(rng_.below(2048));
      f.chip_fault_per64k = static_cast<std::uint32_t>(rng_.below(2048));
      f.max_burst = static_cast<std::uint32_t>(1 + rng_.below(4));
      if (rng_.chance(0.3)) {
        // Occasionally the chip dies partway through, exercising the
        // failover seam instead of the retry loop.
        f.chip_fail_after = 1 + rng_.below(256);
      }
    }
  }

  // --- event stream ---------------------------------------------------------
  // The fabric's reconfig path clears queue state, which invalidates the
  // hwpq mirror; keep fair-tag scenarios reconfig-free so they exercise
  // the five-way (chip/oracle/4xPQ) diff instead.
  const bool allow_reconfig = sc.fabric.discipline != Discipline::kFairTag &&
                              rng_.chance(opt_.reconfig_probability);
  const std::uint64_t vtime_per_decide =
      sc.fabric.block_mode ? sc.fabric.slots : 1;
  std::uint64_t decide_budget = kVtimeBudget / vtime_per_decide;
  const double arrival_rate = 0.2 + rng_.uniform() * 0.6;  // per slot/decide

  sc.events.reserve(opt_.events_per_scenario);
  while (sc.events.size() < opt_.events_per_scenario) {
    // A burst of arrivals across the slots...
    for (unsigned i = 0;
         i < sc.fabric.slots && sc.events.size() < opt_.events_per_scenario;
         ++i) {
      if (!rng_.chance(arrival_rate)) continue;
      Event e;
      e.stream = i;
      if (sc.fabric.discipline == Discipline::kFairTag) {
        e.kind = EventKind::kTaggedArrival;
        e.tag_increment = static_cast<std::uint32_t>(1 + rng_.below(4));
      } else {
        e.kind = EventKind::kArrival;
      }
      sc.events.push_back(e);
    }
    // ...an occasional mid-run re-LOAD...
    if (allow_reconfig && rng_.chance(0.01)) {
      Event e;
      e.kind = EventKind::kReconfig;
      e.stream = static_cast<std::uint32_t>(rng_.below(sc.fabric.slots));
      e.setup = random_setup(sc.fabric.discipline);
      sc.events.push_back(e);
    }
    // ...then one or a few decision cycles (idle gaps included: arrivals
    // may be absent, making the fabric run idle cycles).
    const auto decides = 1 + rng_.below(3);
    for (std::uint64_t d = 0; d < decides && decide_budget > 0; ++d) {
      sc.events.push_back(Event{});  // kDecide
      --decide_budget;
    }
    if (decide_budget == 0) break;  // 16-bit horizon guard
  }

  // --- rank-layer axis ------------------------------------------------------
  // Drawn after everything else so turning the axis on leaves the rest of
  // the scenario (and every scenario of a disabled run) bit-identical.
  if (opt_.explore_rank && rng_.chance(0.75)) {
    sc.rank.enabled = true;
    sc.rank.disc = static_cast<RankDisc>(rng_.below(6));
    sc.rank.backend = static_cast<RankBackend>(rng_.below(5));
    sc.rank.bands = static_cast<std::uint8_t>(1 + rng_.below(8));
  }

  return sc;
}

}  // namespace ss::testing
