#include "testing/batch_equivalence.hpp"

#include <algorithm>
#include <string>

#include "queueing/link_model.hpp"
#include "queueing/queue_manager.hpp"
#include "queueing/transmission_engine.hpp"

namespace ss::testing {
namespace {

hw::ChipConfig chip_config(const FabricPoint& f, unsigned batch_depth) {
  hw::ChipConfig hc;
  hc.slots = f.slots;
  hc.block_mode = f.block_mode;
  hc.min_first = f.min_first;
  hc.schedule = f.schedule;
  hc.batch_depth = batch_depth;
  switch (f.discipline) {
    case Discipline::kDwcs:
      hc.cmp_mode = hw::ComparisonMode::kDwcsFull;
      break;
    case Discipline::kEdf:
      hc.cmp_mode = hw::ComparisonMode::kTagOnly;
      break;
    case Discipline::kStaticPrio:
      hc.cmp_mode = hw::ComparisonMode::kStatic;
      break;
    case Discipline::kFairTag:
      hc.cmp_mode = hw::ComparisonMode::kTagOnly;
      hc.timing.bypass_update = true;
      break;
  }
  return hc;
}

std::string stream_tag(unsigned i) {
  return "stream " + std::to_string(i) + ": ";
}

/// Strictly-increasing check; returns false on the first violation.
bool increasing(const std::vector<std::uint64_t>& v) {
  for (std::size_t k = 1; k < v.size(); ++k) {
    if (v[k] <= v[k - 1]) return false;
  }
  return true;
}

}  // namespace

PipelineRun run_block_pipeline(const Scenario& sc, unsigned batch_depth) {
  const unsigned n = sc.fabric.slots;
  PipelineRun run;
  run.batch_depth = batch_depth;
  run.produced.assign(n, 0);
  run.tx_seq.assign(n, {});
  run.drop_seq.assign(n, {});
  run.leftover.assign(n, 0);

  hw::SchedulerChip chip(chip_config(sc.fabric, batch_depth));
  queueing::QueueManager qm(1000);
  queueing::LinkModel link(1.0);
  queueing::TransmissionEngine te(qm, link);
  te.set_record_frames(false);

  for (unsigned i = 0; i < n; ++i) {
    chip.load_slot(static_cast<hw::SlotId>(i),
                   to_slot_config(sc.fabric.discipline, sc.streams[i]));
    // Rings sized past any fuzzer event budget: a full ring would make the
    // chip's backlog run ahead of the host queue and muddy conservation.
    qm.add_stream(8192);
  }

  std::vector<std::uint64_t> seq(n, 0);
  std::vector<std::uint64_t> tag_clock(n, 0);
  std::uint64_t global_tag_clock = 0;
  std::vector<queueing::BlockGrant> burst;
  std::vector<queueing::TxRecord> burst_records;
  hw::DecisionOutcome out;  // reused across kDecide events

  for (const Event& e : sc.events) {
    switch (e.kind) {
      case EventKind::kArrival:
      case EventKind::kTaggedArrival: {
        const std::uint32_t s = e.stream;
        queueing::Frame f;
        f.stream = s;
        f.bytes = 64;
        f.seq = seq[s];
        // The sequence number doubles as the arrival stamp so TxRecord
        // (which carries arrival_ns but not seq) identifies the exact
        // frame the ring surrendered — the check reads the pipeline's own
        // output, not shadow state.
        f.arrival_ns = seq[s];
        ++seq[s];
        if (!qm.produce(s, f)) break;  // ring full: arrival never admitted
        ++run.produced[s];
        const std::uint64_t arr = chip.vtime();
        if (sc.fabric.discipline == Discipline::kFairTag) {
          const std::uint64_t inc =
              e.kind == EventKind::kTaggedArrival
                  ? std::max<std::uint32_t>(1, e.tag_increment)
                  : 1;
          std::uint64_t tag;
          if (sc.global_tags) {
            global_tag_clock += inc;
            tag = global_tag_clock;
          } else {
            tag_clock[s] += inc;
            tag = tag_clock[s];
          }
          chip.push_tagged_request(static_cast<hw::SlotId>(s),
                                   hw::Deadline{tag}, hw::Arrival{arr});
        } else {
          chip.push_request(static_cast<hw::SlotId>(s), hw::Arrival{arr});
        }
        break;
      }

      case EventKind::kReconfig:
        chip.load_slot(static_cast<hw::SlotId>(e.stream),
                       to_slot_config(sc.fabric.discipline, e.setup));
        break;

      case EventKind::kDecide: {
        chip.run_decision_cycle(out);
        ++run.decisions;
        for (const hw::SlotId s : out.drops) {
          if (const auto f = qm.consume(s)) {
            run.drop_seq[s].push_back(f->seq);
          }
        }
        if (out.idle) break;
        run.grants += out.grants.size();
        burst.clear();
        for (const hw::Grant& g : out.grants) {
          burst.push_back({g.slot, g.emit_vtime});
        }
        burst_records.clear();
        te.transmit_block(burst, &burst_records);
        for (const queueing::TxRecord& rec : burst_records) {
          run.tx_seq[rec.stream].push_back(rec.arrival_ns);
        }
        break;
      }
    }
  }

  run.spurious = te.spurious_schedules();
  for (unsigned i = 0; i < n; ++i) run.leftover[i] = qm.depth(i);
  return run;
}

std::string check_run_integrity(const Scenario& sc, const PipelineRun& run) {
  for (unsigned i = 0; i < sc.fabric.slots; ++i) {
    const auto& tx = run.tx_seq[i];
    const auto& dr = run.drop_seq[i];
    if (!increasing(tx)) {
      return stream_tag(i) + "transmit order not strictly increasing " +
             "(depth " + std::to_string(run.batch_depth) + ")";
    }
    if (!increasing(dr)) {
      return stream_tag(i) + "drop order not strictly increasing";
    }
    // Disjoint + jointly contiguous from 0: the ring is FIFO, so the
    // merged consumption stream must be exactly 0..k-1 with no holes.
    std::vector<std::uint64_t> merged;
    merged.reserve(tx.size() + dr.size());
    std::merge(tx.begin(), tx.end(), dr.begin(), dr.end(),
               std::back_inserter(merged));
    for (std::size_t k = 0; k < merged.size(); ++k) {
      if (merged[k] != k) {
        return stream_tag(i) + "consumed frames not the FIFO prefix (saw " +
               std::to_string(merged[k]) + " at position " +
               std::to_string(k) + ")";
      }
    }
    if (merged.size() + run.leftover[i] != run.produced[i]) {
      return stream_tag(i) + "conservation: produced=" +
             std::to_string(run.produced[i]) + " consumed=" +
             std::to_string(merged.size()) + " leftover=" +
             std::to_string(run.leftover[i]);
    }
  }
  return {};
}

std::string check_batch_equivalence(const Scenario& sc, const PipelineRun& a,
                                    const PipelineRun& b) {
  if (auto err = check_run_integrity(sc, a); !err.empty()) return err;
  if (auto err = check_run_integrity(sc, b); !err.empty()) return err;

  // A stream is exempt from the cross-depth clause if it is droppable at
  // any point in the run (initially or via re-LOAD): expiry depends on the
  // virtual-time trajectory, which batching legitimately changes.
  std::vector<bool> droppable(sc.fabric.slots);
  for (unsigned i = 0; i < sc.fabric.slots; ++i) {
    droppable[i] = sc.streams[i].droppable;
  }
  for (const Event& e : sc.events) {
    if (e.kind == EventKind::kReconfig && e.setup.droppable) {
      droppable[e.stream] = true;
    }
  }

  for (unsigned i = 0; i < sc.fabric.slots; ++i) {
    if (droppable[i]) continue;
    const auto& ta = a.tx_seq[i];
    const auto& tb = b.tx_seq[i];
    const auto& shorter = ta.size() <= tb.size() ? ta : tb;
    const auto& longer = ta.size() <= tb.size() ? tb : ta;
    if (!std::equal(shorter.begin(), shorter.end(), longer.begin())) {
      return stream_tag(i) + "batched transmit order is not a prefix of " +
             "the winner-only order (depths " + std::to_string(a.batch_depth) +
             " vs " + std::to_string(b.batch_depth) + ")";
    }
  }
  return {};
}

}  // namespace ss::testing
