// factory.hpp — uniform construction of every hardware priority-queue
// variant.
//
// The Section-3 ablation and the differential fuzz harness both want to
// iterate "all related-work PQ structures" without naming each class: the
// fuzzer drives every variant through the same tagged event stream and
// requires their pop order to agree with the scheduler fabric (all five
// structures realize the same total order when keys are unique).
#pragma once

#include <array>
#include <memory>

#include "hwpq/pq_interface.hpp"

namespace ss::hwpq {

enum class PqKind : std::uint8_t {
  kBinaryHeap,
  kPipelinedHeap,
  kSystolic,
  kShiftRegister,
};

inline constexpr std::array<PqKind, 4> kAllPqKinds = {
    PqKind::kBinaryHeap,
    PqKind::kPipelinedHeap,
    PqKind::kSystolic,
    PqKind::kShiftRegister,
};

/// Construct a PQ of the given kind with at least `capacity` entries.
[[nodiscard]] std::unique_ptr<HwPriorityQueue> make_pq(PqKind kind,
                                                       std::size_t capacity);

}  // namespace ss::hwpq
