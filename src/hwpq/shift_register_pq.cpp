#include "hwpq/shift_register_pq.hpp"

#include <algorithm>
#include <stdexcept>

#include "hw/decision_block.hpp"
#include "hw/register_block.hpp"

namespace ss::hwpq {

ShiftRegisterPq::ShiftRegisterPq(std::size_t capacity) : cap_(capacity) {
  cells_.reserve(capacity);
}

void ShiftRegisterPq::push(Entry e) {
  if (cells_.size() >= cap_) throw std::length_error("ShiftRegisterPq full");
  cycles_ += 1;  // broadcast + single-cycle chain shift
  // Stable insertion keeps FIFO order among equal keys, matching the
  // "insert behind equal priorities" behaviour of the hardware chain.
  const auto it = std::upper_bound(
      cells_.begin(), cells_.end(), e,
      [](const Entry& a, const Entry& b) { return a.key < b.key; });
  cells_.insert(it, e);
}

std::optional<Entry> ShiftRegisterPq::pop_min() {
  if (cells_.empty()) return std::nullopt;
  cycles_ += 1;
  const Entry top = cells_.front();
  cells_.erase(cells_.begin());
  return top;
}

std::uint64_t ShiftRegisterPq::resort_cycles(std::size_t n) const {
  // A global priority rewrite forces re-insertion of all n entries through
  // the broadcast port, one per cycle.
  return n;
}

unsigned ShiftRegisterPq::area_slices(std::size_t cap) const {
  // Entry register + Decision block per cell, plus ~20 slices/cell of
  // broadcast-bus buffering (the wiring cost [18] highlights).
  return static_cast<unsigned>(cap) *
         (hw::kRegisterBlockSlices + hw::kDecisionBlockSlices + 20);
}

}  // namespace ss::hwpq
