// pipelined_heap_pq.hpp — pipelined heap in the style of Ioannou &
// Katevenis (ICC 2001), reference [10] of the paper.
//
// One comparator stage per tree LEVEL, so successive operations overlap:
// after the pipeline fills, the structure sustains one operation per
// cycle with a latency of log2(capacity) cycles.  The cycle accounting
// models exactly that: each op contributes 1 occupancy cycle, plus the
// fill latency whenever the pipeline had drained.  The functional
// behaviour is a correct min-heap (the pipelining changes timing, not
// results, for the single-issuer usage the scheduler makes of it).
#pragma once

#include <cstdint>
#include <vector>

#include "hwpq/pq_interface.hpp"

namespace ss::hwpq {

class PipelinedHeapPq final : public HwPriorityQueue {
 public:
  explicit PipelinedHeapPq(std::size_t capacity);

  void push(Entry e) override;
  std::optional<Entry> pop_min() override;
  [[nodiscard]] std::size_t size() const override { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const override { return cap_; }
  [[nodiscard]] std::uint64_t cycles() const override { return cycles_; }
  [[nodiscard]] std::uint64_t resort_cycles(std::size_t n) const override;
  [[nodiscard]] unsigned area_slices(std::size_t cap) const override;
  [[nodiscard]] std::string name() const override { return "pipelined-heap"; }

  /// Pipeline depth for the configured capacity.
  [[nodiscard]] unsigned pipeline_depth() const { return depth_; }

 private:
  /// Entry plus push sequence, realizing the FIFO-on-equal-keys tie-break
  /// contract of pq_interface.hpp (a width-extended key in hardware).
  struct Cell {
    Entry e;
    std::uint64_t seq;
  };
  // Max-heap comparator on the stable (key, seq) order: the min (and,
  // among equal keys, the earliest-pushed) entry surfaces first.
  static bool after(const Cell& a, const Cell& b) {
    return a.e.key > b.e.key || (a.e.key == b.e.key && a.seq > b.seq);
  }
  void account_op();

  std::size_t cap_;
  unsigned depth_;
  std::vector<Cell> heap_;
  std::uint64_t cycles_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t ops_in_flight_window_ = 0;  ///< ops since last drain
};

}  // namespace ss::hwpq
