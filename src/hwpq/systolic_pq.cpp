#include "hwpq/systolic_pq.hpp"

#include <algorithm>
#include <stdexcept>

#include "hw/decision_block.hpp"
#include "hw/register_block.hpp"

namespace ss::hwpq {

SystolicPq::SystolicPq(std::size_t capacity) : cap_(capacity) {
  cells_.reserve(capacity);
}

void SystolicPq::push(Entry e) {
  if (cells_.size() >= cap_) throw std::length_error("SystolicPq full");
  cycles_ += 1;  // head insertion; ripple overlaps subsequent cycles
  // Insert BEHIND equal keys: the ripple comparator only displaces a cell
  // on a strictly-smaller key, which is what realizes the FIFO tie-break
  // contract of pq_interface.hpp in this structure.
  const auto it = std::upper_bound(
      cells_.begin(), cells_.end(), e,
      [](const Entry& a, const Entry& b) { return a.key < b.key; });
  cells_.insert(it, e);
}

std::optional<Entry> SystolicPq::pop_min() {
  if (cells_.empty()) return std::nullopt;
  cycles_ += 1;
  const Entry top = cells_.front();
  cells_.erase(cells_.begin());
  return top;
}

std::uint64_t SystolicPq::resort_cycles(std::size_t n) const {
  // After a global priority rewrite the array is unordered; the systolic
  // ripple is an odd-even transposition sort over the cells: n cycles
  // until the head is guaranteed correct again.
  return n;
}

unsigned SystolicPq::area_slices(std::size_t cap) const {
  // One entry register + one full Decision block per cell: the expensive,
  // fast end of the design space.
  return static_cast<unsigned>(cap) *
         (hw::kRegisterBlockSlices + hw::kDecisionBlockSlices);
}

}  // namespace ss::hwpq
