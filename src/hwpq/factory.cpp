#include "hwpq/factory.hpp"

#include "hwpq/binary_heap_pq.hpp"
#include "hwpq/pipelined_heap_pq.hpp"
#include "hwpq/shift_register_pq.hpp"
#include "hwpq/systolic_pq.hpp"

namespace ss::hwpq {

std::unique_ptr<HwPriorityQueue> make_pq(PqKind kind, std::size_t capacity) {
  switch (kind) {
    case PqKind::kBinaryHeap:
      return std::make_unique<BinaryHeapPq>(capacity);
    case PqKind::kPipelinedHeap:
      return std::make_unique<PipelinedHeapPq>(capacity);
    case PqKind::kSystolic:
      return std::make_unique<SystolicPq>(capacity);
    case PqKind::kShiftRegister:
      return std::make_unique<ShiftRegisterPq>(capacity);
  }
  return nullptr;  // unreachable; keeps -Wreturn-type quiet
}

}  // namespace ss::hwpq
