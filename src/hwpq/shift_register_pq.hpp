// shift_register_pq.hpp — shift-register-chain priority queue (the Moon,
// Rexford & Shin structure, reference [18] of the paper).
//
// Every cell holds one entry and a comparator; a new entry is BROADCAST to
// all cells simultaneously, each cell decides locally whether to keep its
// entry, take the new one, or take its neighbour's, and the whole chain
// shifts in a single cycle.  Insert and extract are genuinely one cycle,
// but the broadcast bus plus a Decision block per cell make it the most
// area- and wiring-hungry of the classic structures.
#pragma once

#include <cstdint>
#include <vector>

#include "hwpq/pq_interface.hpp"

namespace ss::hwpq {

class ShiftRegisterPq final : public HwPriorityQueue {
 public:
  explicit ShiftRegisterPq(std::size_t capacity);

  void push(Entry e) override;
  std::optional<Entry> pop_min() override;
  [[nodiscard]] std::size_t size() const override { return cells_.size(); }
  [[nodiscard]] std::size_t capacity() const override { return cap_; }
  [[nodiscard]] std::uint64_t cycles() const override { return cycles_; }
  [[nodiscard]] std::uint64_t resort_cycles(std::size_t n) const override;
  [[nodiscard]] unsigned area_slices(std::size_t cap) const override;
  [[nodiscard]] std::string name() const override { return "shift-register"; }

 private:
  std::size_t cap_;
  std::vector<Entry> cells_;  ///< ascending by key; front = min
  std::uint64_t cycles_ = 0;
};

}  // namespace ss::hwpq
