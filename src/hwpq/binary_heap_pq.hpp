// binary_heap_pq.hpp — conventional (non-pipelined) hardware binary heap.
//
// The baseline priority-queue structure: a RAM-resident array heap with a
// single comparator datapath walking one tree level per pair of cycles
// (read + compare/writeback).  Insert and extract each cost
// 2*ceil(log2(n+1)) cycles and operations cannot overlap.
#pragma once

#include <cstdint>
#include <vector>

#include "hwpq/pq_interface.hpp"

namespace ss::hwpq {

class BinaryHeapPq final : public HwPriorityQueue {
 public:
  explicit BinaryHeapPq(std::size_t capacity);

  void push(Entry e) override;
  std::optional<Entry> pop_min() override;
  [[nodiscard]] std::size_t size() const override { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const override { return cap_; }
  [[nodiscard]] std::uint64_t cycles() const override { return cycles_; }
  [[nodiscard]] std::uint64_t resort_cycles(std::size_t n) const override;
  [[nodiscard]] unsigned area_slices(std::size_t cap) const override;
  [[nodiscard]] std::string name() const override { return "binary-heap"; }

 private:
  /// Heap cell: the entry plus its push sequence number, so equal keys
  /// drain FIFO (the documented tie-break contract of pq_interface.hpp —
  /// in hardware, a width-extended key with an arrival stamp in the low
  /// bits).
  struct Cell {
    Entry e;
    std::uint64_t seq;
  };
  static bool before(const Cell& a, const Cell& b) {
    return a.e.key < b.e.key || (a.e.key == b.e.key && a.seq < b.seq);
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  [[nodiscard]] std::uint64_t levels() const;

  std::size_t cap_;
  std::vector<Cell> heap_;
  std::uint64_t cycles_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ss::hwpq
