#include "hwpq/pipelined_heap_pq.hpp"

#include <algorithm>
#include <stdexcept>

#include "hw/decision_block.hpp"
#include "hw/register_block.hpp"
#include "util/bitops.hpp"

namespace ss::hwpq {

PipelinedHeapPq::PipelinedHeapPq(std::size_t capacity)
    : cap_(capacity), depth_(log2_ceil(capacity + 1)) {
  heap_.reserve(capacity);
}

void PipelinedHeapPq::account_op() {
  // First op after a drain pays the fill latency; subsequent back-to-back
  // ops land one per cycle.
  if (ops_in_flight_window_ == 0) {
    cycles_ += depth_;
  } else {
    cycles_ += 1;
  }
  ++ops_in_flight_window_;
}

void PipelinedHeapPq::push(Entry e) {
  if (heap_.size() >= cap_) throw std::length_error("PipelinedHeapPq full");
  account_op();
  heap_.push_back({e, next_seq_++});
  std::push_heap(heap_.begin(), heap_.end(), after);
}

std::optional<Entry> PipelinedHeapPq::pop_min() {
  if (heap_.empty()) {
    ops_in_flight_window_ = 0;  // pipeline drains on an idle poll
    return std::nullopt;
  }
  account_op();
  std::pop_heap(heap_.begin(), heap_.end(), after);
  const Entry top = heap_.back().e;
  heap_.pop_back();
  return top;
}

std::uint64_t PipelinedHeapPq::resort_cycles(std::size_t n) const {
  // A global priority update invalidates every level; rebuilding streams n
  // replacement operations through the pipeline: n + fill.
  return n == 0 ? 0 : n + depth_;
}

unsigned PipelinedHeapPq::area_slices(std::size_t cap) const {
  // Storage for every element plus one Decision-block comparator per
  // pipeline LEVEL, plus per-level staging registers.
  const unsigned levels = log2_ceil(cap + 1);
  return static_cast<unsigned>(cap) * hw::kRegisterBlockSlices +
         levels * (hw::kDecisionBlockSlices + 30);
}

}  // namespace ss::hwpq
