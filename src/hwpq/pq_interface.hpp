// pq_interface.hpp — common interface for the related-work hardware
// priority-queue architectures (Section 3 of the paper).
//
// The paper argues that heaps, systolic queues and shift-register chains
// cannot serve as a *unified canonical* scheduler architecture because
// (1) each element would need a full multi-attribute Decision block, and
// (2) window-constrained disciplines update priorities every decision
// cycle, forcing a re-sort of the whole structure.  These models make that
// argument quantitative: each structure is functionally correct (property
// tested against std::priority_queue) and carries a cycle and area model
// keyed to the same Virtex-I slice constants as the ShareStreams fabric.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ss::hwpq {

/// A queue entry: smaller key = higher priority (earlier deadline / lower
/// service tag).  `id` identifies the stream/packet.
struct Entry {
  std::uint64_t key;
  std::uint32_t id;
  friend bool operator==(const Entry&, const Entry&) = default;
};

/// Tie-break contract: every structure resolves EQUAL keys in FIFO push
/// order ("insert behind equal priorities", the behaviour the [18]
/// shift-register chain realizes in hardware).  This makes the pop
/// sequence of all four structures — and of a seq-stabilized
/// std::priority_queue — identical for ANY push/pop interleaving, not just
/// for unique keys; tests/hwpq_crosscheck_test.cpp pins it, and the
/// programmable rank layer (src/pifo/) builds its stable-PIFO semantics
/// directly on it.

class HwPriorityQueue {
 public:
  virtual ~HwPriorityQueue() = default;

  virtual void push(Entry e) = 0;
  /// Remove and return the minimum-key entry (empty if the queue is).
  virtual std::optional<Entry> pop_min() = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::size_t capacity() const = 0;

  /// Hardware cycles consumed by all operations so far.
  [[nodiscard]] virtual std::uint64_t cycles() const = 0;

  /// Cycles to restore order after a global priority update touching all
  /// `n` live entries — the per-decision-cycle cost a window-constrained
  /// discipline would impose on this structure.
  [[nodiscard]] virtual std::uint64_t resort_cycles(std::size_t n) const = 0;

  /// Area in Virtex-I slices for the given capacity, assuming the same
  /// per-element storage and comparator complexity as the ShareStreams
  /// Register Base / Decision blocks (the apples-to-apples comparison the
  /// paper's area argument requires).
  [[nodiscard]] virtual unsigned area_slices(std::size_t cap) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace ss::hwpq
