#include "hwpq/binary_heap_pq.hpp"

#include <stdexcept>
#include <utility>

#include "hw/decision_block.hpp"
#include "hw/register_block.hpp"
#include "util/bitops.hpp"

namespace ss::hwpq {

BinaryHeapPq::BinaryHeapPq(std::size_t capacity) : cap_(capacity) {
  heap_.reserve(capacity);
}

std::uint64_t BinaryHeapPq::levels() const {
  return heap_.empty() ? 1 : log2_ceil(heap_.size() + 1);
}

void BinaryHeapPq::push(Entry e) {
  if (heap_.size() >= cap_) throw std::length_error("BinaryHeapPq full");
  // One read+compare+writeback pair of cycles per level traversed.
  cycles_ += 2 * levels();
  heap_.push_back({e, next_seq_++});
  sift_up(heap_.size() - 1);
}

std::optional<Entry> BinaryHeapPq::pop_min() {
  if (heap_.empty()) return std::nullopt;
  cycles_ += 2 * levels();
  const Entry top = heap_.front().e;
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

void BinaryHeapPq::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t p = (i - 1) / 2;
    if (!before(heap_[i], heap_[p])) break;
    std::swap(heap_[p], heap_[i]);
    i = p;
  }
}

void BinaryHeapPq::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && before(heap_[l], heap_[best])) best = l;
    if (r < n && before(heap_[r], heap_[best])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

std::uint64_t BinaryHeapPq::resort_cycles(std::size_t n) const {
  // Bottom-up heapify with a single sequential comparator datapath:
  // ~2 cycles of work per element (Floyd's bound) plus a log-depth drain.
  return n == 0 ? 0 : 2 * n + 2 * log2_ceil(n + 1);
}

unsigned BinaryHeapPq::area_slices(std::size_t cap) const {
  // Storage for every element plus ONE comparator datapath — the cheap,
  // slow end of the design space.  Multi-attribute ordering still needs a
  // full Decision block as that single comparator.
  return static_cast<unsigned>(cap) * hw::kRegisterBlockSlices +
         hw::kDecisionBlockSlices + 40 /* address/index logic */;
}

}  // namespace ss::hwpq
