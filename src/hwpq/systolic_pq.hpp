// systolic_pq.hpp — systolic-array priority queue.
//
// A linear array of cells, each holding one entry and a comparator.  New
// entries enter at the head; every cycle each cell compares with its
// neighbour and the larger key ripples one cell toward the tail.  The
// head therefore always holds the minimum, giving O(1) *observed* insert
// and extract latency (the ripple proceeds in the background), at the
// cost of a comparator in EVERY cell — the area tradeoff the paper's
// Section 3 calls out.
//
// The model keeps the array exactly sorted (the steady-state the systolic
// ripple converges to between operations) and charges 1 cycle per
// operation; `area_slices` charges a Decision block per cell.
#pragma once

#include <cstdint>
#include <vector>

#include "hwpq/pq_interface.hpp"

namespace ss::hwpq {

class SystolicPq final : public HwPriorityQueue {
 public:
  explicit SystolicPq(std::size_t capacity);

  void push(Entry e) override;
  std::optional<Entry> pop_min() override;
  [[nodiscard]] std::size_t size() const override { return cells_.size(); }
  [[nodiscard]] std::size_t capacity() const override { return cap_; }
  [[nodiscard]] std::uint64_t cycles() const override { return cycles_; }
  [[nodiscard]] std::uint64_t resort_cycles(std::size_t n) const override;
  [[nodiscard]] unsigned area_slices(std::size_t cap) const override;
  [[nodiscard]] std::string name() const override { return "systolic"; }

 private:
  std::size_t cap_;
  std::vector<Entry> cells_;  ///< ascending by key; front = min
  std::uint64_t cycles_ = 0;
};

}  // namespace ss::hwpq
