// fault_plan.hpp — the seeded, deterministic fault source.
//
// A FaultPlan implements hw::FaultInjector: attached to the PCI model, an
// SRAM bank and the scheduler chip, it decides — purely from its seed and
// the sequence of transaction attempts — which attempts fail.  Faults
// arrive in short *episodes* (1..max_burst consecutive failed attempts at
// one site), modeling a stuck arbiter or a noisy bus window rather than
// independent coin flips; an episode shorter than the recovery policy's
// retry bound therefore always recovers, and one longer always exhausts.
//
// All profile knobs are integers (rates are per-65536 fixed point) so a
// profile round-trips exactly through the ssfuzz-v1 text format.
#pragma once

#include <array>
#include <cstdint>

#include "hw/fault_hooks.hpp"
#include "telemetry/instruments.hpp"
#include "util/rng.hpp"

namespace ss::telemetry {
class AuditSession;
}  // namespace ss::telemetry

namespace ss::robust {

/// Everything that determines the fault sequence.  seed == 0 disables the
/// plane entirely (no injector is attached anywhere).
struct FaultProfile {
  std::uint64_t seed = 0;             ///< 0 = fault plane disabled
  std::uint32_t pci_fault_per64k = 0; ///< per-attempt fault rate, x/65536
  std::uint32_t sram_fault_per64k = 0;
  std::uint32_t chip_fault_per64k = 0;
  std::uint32_t max_burst = 2;        ///< episode length is 1..max_burst
  std::uint64_t pci_timeout_ns = 1200;  ///< bus held until master-abort
  std::uint64_t sram_stall_ns = 2000;   ///< arbitration stall window
  std::uint64_t chip_stall_ns = 500;    ///< decision-cycle hang window
  /// Hard chip death: after this many decision-cycle attempts every
  /// further attempt faults, forcing failover.  0 = never.
  std::uint64_t chip_fail_after = 0;

  [[nodiscard]] bool enabled() const { return seed != 0; }
  friend bool operator==(const FaultProfile&, const FaultProfile&) = default;
};

class FaultPlan final : public hw::FaultInjector {
 public:
  explicit FaultPlan(const FaultProfile& profile)
      : prof_(profile), rng_(profile.seed) {}

  hw::FaultDecision on_transaction(hw::FaultSite site) override;

  /// Attach live metrics (nullptr detaches): per-site injected-fault
  /// counters (robust.faults.{pci,sram,chip}).
  void attach_metrics(telemetry::RobustMetrics* m) { metrics_ = m; }

  /// Attach a decision-audit session (nullptr detaches): every injected
  /// fault is noted at injection time so the decision it stalls is
  /// classified as a fault-induced burn and the dump carries per-site
  /// fault counts.
  void attach_audit(telemetry::AuditSession* a) { audit_ = a; }

  [[nodiscard]] const FaultProfile& profile() const { return prof_; }
  [[nodiscard]] std::uint64_t injected(hw::FaultSite site) const {
    return injected_[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] std::uint64_t total_injected() const;

 private:
  FaultProfile prof_;
  Rng rng_;
  /// Remaining faulted attempts in the current episode, per site.
  std::array<std::uint32_t, 6> burst_left_{};
  /// Set when an episode ends: the next attempt at the site is forced
  /// clean, so episodes can never chain past max_burst.
  std::array<bool, 6> cooldown_{};
  std::array<std::uint64_t, 6> injected_{};
  std::uint64_t chip_attempts_ = 0;
  telemetry::RobustMetrics* metrics_ = nullptr;
  telemetry::AuditSession* audit_ = nullptr;
};

}  // namespace ss::robust
