#include "robust/fault_plan.hpp"

#include "telemetry/audit.hpp"

namespace ss::robust {

namespace {
constexpr std::size_t idx(hw::FaultSite s) {
  return static_cast<std::size_t>(s);
}
}  // namespace

hw::FaultDecision FaultPlan::on_transaction(hw::FaultSite site) {
  std::uint32_t rate = 0;
  std::uint64_t penalty_ns = 0;
  switch (site) {
    case hw::FaultSite::kPciWrite:
    case hw::FaultSite::kPciRead:
    case hw::FaultSite::kPciDma:
      rate = prof_.pci_fault_per64k;
      penalty_ns = prof_.pci_timeout_ns;
      break;
    case hw::FaultSite::kSramAcquire:
    case hw::FaultSite::kSramData:
      rate = prof_.sram_fault_per64k;
      penalty_ns = prof_.sram_stall_ns;
      break;
    case hw::FaultSite::kChipDecision:
      rate = prof_.chip_fault_per64k;
      penalty_ns = prof_.chip_stall_ns;
      break;
  }

  bool fault = false;
  const std::size_t i = idx(site);
  if (site == hw::FaultSite::kChipDecision && prof_.chip_fail_after != 0 &&
      ++chip_attempts_ > prof_.chip_fail_after) {
    fault = true;  // hard chip death: every attempt past the threshold
  } else if (burst_left_[i] > 0) {
    --burst_left_[i];
    fault = true;  // continuing an episode
    if (burst_left_[i] == 0) cooldown_[i] = true;
  } else if (cooldown_[i]) {
    // An episode just ended: the next attempt at this site is always
    // clean, so episodes cannot chain into a faulted run longer than
    // max_burst — the invariant that makes "episode within the retry
    // bound" mean "always recovers".
    cooldown_[i] = false;
  } else if (rate > 0 && rng_.below(65536) < rate) {
    // New episode of 1..max_burst consecutive failed attempts.
    const std::uint32_t extra =
        prof_.max_burst > 1
            ? static_cast<std::uint32_t>(rng_.below(prof_.max_burst))
            : 0;
    burst_left_[i] = extra;
    if (extra == 0) cooldown_[i] = true;
    fault = true;
  }
  if (!fault) return {};

  ++injected_[i];
  hw::FaultDecision d;
  d.fault = true;
  d.penalty = Nanos{penalty_ns};
  if (site == hw::FaultSite::kSramData) {
    d.bit = static_cast<unsigned>(rng_.below(32));
  }
  SS_TELEM(if (metrics_) {
    switch (site) {
      case hw::FaultSite::kPciWrite:
      case hw::FaultSite::kPciRead:
      case hw::FaultSite::kPciDma:
        metrics_->pci_faults->add(1);
        break;
      case hw::FaultSite::kSramAcquire:
      case hw::FaultSite::kSramData:
        metrics_->sram_faults->add(1);
        break;
      case hw::FaultSite::kChipDecision:
        metrics_->chip_faults->add(1);
        break;
    }
  });
  SS_TELEM(if (audit_) {
    switch (site) {
      case hw::FaultSite::kPciWrite:
      case hw::FaultSite::kPciRead:
      case hw::FaultSite::kPciDma:
        audit_->note_fault(telemetry::AuditSession::FaultSite::kPci);
        break;
      case hw::FaultSite::kSramAcquire:
      case hw::FaultSite::kSramData:
        audit_->note_fault(telemetry::AuditSession::FaultSite::kSram);
        break;
      case hw::FaultSite::kChipDecision:
        audit_->note_fault(telemetry::AuditSession::FaultSite::kChip);
        break;
    }
  });
  return d;
}

std::uint64_t FaultPlan::total_injected() const {
  std::uint64_t n = 0;
  for (const auto v : injected_) n += v;
  return n;
}

}  // namespace ss::robust
