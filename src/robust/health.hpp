// health.hpp — the endsystem's hardware-health FSM.
//
//   HEALTHY --fault--> DEGRADED --exhaustion--> FAILED_OVER (sticky)
//      ^                   |
//      +--- N clean txns --+
//
// DEGRADED means faults have been observed but every transaction still
// completed within its retry bound; a streak of clean transactions earns
// the way back to HEALTHY.  FAILED_OVER is terminal for the run: the
// hardware path is abandoned and the software scheduler serves all
// further decisions.
#pragma once

#include <cstdint>

#include "telemetry/instruments.hpp"

namespace ss::robust {

enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kFailedOver = 2,
};

class HealthMonitor {
 public:
  struct Options {
    /// Consecutive clean transactions that promote DEGRADED back to
    /// HEALTHY.
    std::uint32_t clean_to_recover = 16;
  };

  HealthMonitor() = default;
  explicit HealthMonitor(Options opt) : opt_(opt) {}

  /// Attach live metrics (nullptr detaches); publishes the current state
  /// to the robust.health gauge immediately.
  void attach_metrics(telemetry::RobustMetrics* m) {
    metrics_ = m;
    publish();
  }

  void on_fault() {
    clean_streak_ = 0;
    if (state_ == HealthState::kHealthy) {
      state_ = HealthState::kDegraded;
      ++transitions_;
      publish();
    }
  }

  void on_clean() {
    if (state_ != HealthState::kDegraded) return;
    if (++clean_streak_ >= opt_.clean_to_recover) {
      state_ = HealthState::kHealthy;
      clean_streak_ = 0;
      ++transitions_;
      publish();
    }
  }

  void on_failover() {
    if (state_ == HealthState::kFailedOver) return;
    state_ = HealthState::kFailedOver;
    ++transitions_;
    publish();
  }

  [[nodiscard]] HealthState state() const { return state_; }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

 private:
  void publish() {
    SS_TELEM(if (metrics_) {
      metrics_->health->set(static_cast<std::int64_t>(state_));
    });
  }

  Options opt_{};
  HealthState state_ = HealthState::kHealthy;
  std::uint32_t clean_streak_ = 0;
  std::uint64_t transitions_ = 0;
  telemetry::RobustMetrics* metrics_ = nullptr;
};

}  // namespace ss::robust
