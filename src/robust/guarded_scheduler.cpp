#include "robust/guarded_scheduler.hpp"

#include "telemetry/audit.hpp"

namespace ss::robust {

// The software oracle's OrderRule must mirror the hardware Rule values so
// cross-layer provenance (audit rule indices) means the same thing on
// both decision paths.
static_assert(static_cast<int>(dwcs::OrderRule::kPendingOnly) ==
              static_cast<int>(hw::Rule::kPendingOnly));
static_assert(static_cast<int>(dwcs::OrderRule::kDeadline) ==
              static_cast<int>(hw::Rule::kDeadline));
static_assert(static_cast<int>(dwcs::OrderRule::kWindowConstraint) ==
              static_cast<int>(hw::Rule::kWindowConstraint));
static_assert(static_cast<int>(dwcs::OrderRule::kZeroDenominator) ==
              static_cast<int>(hw::Rule::kZeroDenominator));
static_assert(static_cast<int>(dwcs::OrderRule::kNumerator) ==
              static_cast<int>(hw::Rule::kNumerator));
static_assert(static_cast<int>(dwcs::OrderRule::kFcfsArrival) ==
              static_cast<int>(hw::Rule::kFcfsArrival));
static_assert(static_cast<int>(dwcs::OrderRule::kIdTieBreak) ==
              static_cast<int>(hw::Rule::kIdTieBreak));

namespace {

dwcs::ReferenceScheduler::Options shadow_options(const hw::ChipConfig& cc) {
  dwcs::ReferenceScheduler::Options o;
  o.block_mode = cc.block_mode;
  o.min_first = cc.min_first;
  o.edf_comparison = cc.cmp_mode == hw::ComparisonMode::kTagOnly;
  o.batch_depth = cc.batch_depth;
  return o;
}

}  // namespace

GuardedScheduler::GuardedScheduler(hw::SchedulerChip& chip, FaultPlan* plan)
    : GuardedScheduler(chip, plan, Options{}) {}

GuardedScheduler::GuardedScheduler(hw::SchedulerChip& chip, FaultPlan* plan,
                                   Options opt)
    : chip_(chip),
      plan_(plan),
      opt_(opt),
      shadow_(shadow_options(chip.config())),
      sram_(opt.sram_words, Nanos{opt.sram_switch_ns}),
      health_(opt.health) {
  for (unsigned i = 0; i < chip_.config().slots; ++i) {
    shadow_.add_stream({});
  }
  if (plan_) {
    chip_.attach_faults(plan_);
    sram_.attach_faults(plan_);
  }
}

void GuardedScheduler::attach_metrics(telemetry::RobustMetrics* m) {
  metrics_ = m;
  health_.attach_metrics(m);
  if (plan_) plan_->attach_metrics(m);
}

void GuardedScheduler::attach_audit(telemetry::AuditSession* a) {
  audit_ = a;
  chip_.attach_audit(a);
  if (plan_) plan_->attach_audit(a);
}

void GuardedScheduler::load_slot(hw::SlotId slot,
                                 const hw::SlotConfig& hw_cfg,
                                 const dwcs::StreamSpec& sw_spec) {
  if (!failed_over_) chip_.load_slot(slot, hw_cfg);
  shadow_.reload_stream(slot, sw_spec);
}

void GuardedScheduler::push_request(hw::SlotId slot, std::uint64_t arrival) {
  if (!failed_over_) chip_.push_request(slot, hw::Arrival{arrival});
  shadow_.push_request(slot, arrival);
}

void GuardedScheduler::push_tagged_request(hw::SlotId slot, std::uint64_t tag,
                                           std::uint64_t arrival) {
  if (!failed_over_) {
    chip_.push_tagged_request(slot, hw::Deadline{tag}, hw::Arrival{arrival});
  }
  shadow_.push_tagged_request(slot, tag, arrival);
}

void GuardedScheduler::force_failover() {
  if (failed_over_) return;
  failed_over_ = true;
  ++stats_.failovers;
  health_.on_failover();
  SS_TELEM(if (metrics_) metrics_->failovers->add(1));
  // Black-box dump: the chip no longer runs after this point, so the
  // flight recorder is frozen exactly at the state that led here.  This
  // one hook also covers retry exhaustion — every exhaustion path calls
  // force_failover().
  SS_TELEM(if (audit_ != nullptr) {
    audit_->set_health(static_cast<std::uint8_t>(health_.state()));
    // Always-sample override: should any further decision run through
    // the session (software-path harnesses), it carries full provenance.
    audit_->force_sample();
    audit_->dump("failover");
  });
}

void GuardedScheduler::shadow_decide(hw::DecisionOutcome& out) {
  const dwcs::SwDecision sd = shadow_.run_decision_cycle();
  out.idle = sd.idle;
  out.circulated.reset();
  out.grants.clear();
  out.block.clear();
  out.drops.clear();
  if (sd.circulated) {
    out.circulated = static_cast<hw::SlotId>(*sd.circulated);
  }
  out.grants.reserve(sd.grants.size());
  for (const auto& g : sd.grants) {
    out.grants.push_back({static_cast<hw::SlotId>(g.stream), g.emit_vtime,
                          g.met_deadline});
  }
  if (chip_.config().block_mode) {
    out.block.reserve(sd.grants.size());
    for (const auto& g : sd.grants) {
      out.block.push_back(static_cast<hw::SlotId>(g.stream));
    }
  }
  out.drops.reserve(sd.drops.size());
  for (const auto d : sd.drops) {
    out.drops.push_back(static_cast<hw::SlotId>(d));
  }
  out.hw_cycles = 0;  // software path: no FPGA cycles burned
}

hw::DecisionOutcome GuardedScheduler::run_decision_cycle() {
  hw::DecisionOutcome out;
  run_decision_cycle(out);
  return out;
}

void GuardedScheduler::run_decision_cycle(hw::DecisionOutcome& out) {
  if (failed_over_) return shadow_decide(out);

  // Publish the current health FSM state so the decision record committed
  // this cycle carries it.
  SS_TELEM(if (audit_ != nullptr) {
    audit_->set_health(static_cast<std::uint8_t>(health_.state()));
  });

  // 1. Hand the SRAM bank to the FPGA so it can read this cycle's
  //    arrival records.
  if (opt_.model_transport) {
    const RetryResult hand =
        with_retry(opt_.recovery, stats_, &health_, metrics_,
                   [&] { return sram_.try_acquire(hw::BankOwner::kFpga); });
    overhead_ += hand.elapsed;
    if (!hand.ok) {
      force_failover();
      return shadow_decide(out);
    }
  }

  // 2. The decision cycle itself.  A stalled attempt mutates no chip
  //    state, so retrying is safe; exhaustion here means the shadow can
  //    serve this very cycle (it has not stepped yet).
  const RetryResult dec =
      with_retry(opt_.recovery, stats_, &health_, metrics_, [&] {
        return hw::FallibleNanos{chip_.try_run_decision_cycle(out), Nanos{0}};
      });
  overhead_ += dec.elapsed;
  if (!dec.ok) {
    force_failover();
    return shadow_decide(out);
  }

  // 3. Lockstep mirror: the shadow executes the same cycle so a later
  //    failover hands over without losing a single queued request.
  (void)shadow_.run_decision_cycle();

  // 4. Host takes the bank back and parity-reads the grant words.  The
  //    decision already happened on both paths, so exhaustion here only
  //    affects *future* cycles: return the chip's outcome, fail over for
  //    the next one.
  if (opt_.model_transport) {
    const RetryResult back =
        with_retry(opt_.recovery, stats_, &health_, metrics_,
                   [&] { return sram_.try_acquire(hw::BankOwner::kHost); });
    overhead_ += back.elapsed;
    if (!back.ok) {
      force_failover();
      return;
    }
    for (std::size_t g = 0; g < out.grants.size(); ++g) {
      const RetryResult rd =
          with_retry(opt_.recovery, stats_, &health_, metrics_, [&] {
            const hw::SramBank::CheckedRead cr = sram_.read_checked(
                hw::BankOwner::kHost, g % sram_.size_words());
            return hw::FallibleNanos{cr.ok, Nanos{0}};
          });
      overhead_ += rd.elapsed;
      if (!rd.ok) {
        force_failover();
        return;
      }
    }
  }
}

std::uint64_t GuardedScheduler::vtime() const {
  return failed_over_ ? shadow_.vtime() : chip_.vtime();
}

dwcs::StreamCounters GuardedScheduler::counters(std::uint32_t slot) const {
  if (failed_over_) return shadow_.stream(slot).counters;
  const auto& c = chip_.slot(static_cast<hw::SlotId>(slot)).counters();
  return {c.missed_deadlines, c.violations, c.serviced, c.late_transmissions,
          c.winner_cycles};
}

std::uint32_t GuardedScheduler::backlog(std::uint32_t slot) const {
  return failed_over_ ? shadow_.stream(slot).backlog
                      : chip_.slot(static_cast<hw::SlotId>(slot)).backlog();
}

}  // namespace ss::robust
