// guarded_scheduler.hpp — the fault-tolerant front door to the chip.
//
// A GuardedScheduler wraps a hw::SchedulerChip and keeps a software
// dwcs::ReferenceScheduler *shadow* in lockstep with it: every load, every
// request push and every decision cycle is mirrored.  The shadow's
// semantics are bit-identical to the chip's within the serial horizon
// (that equivalence is exactly what the differential fuzz campaigns
// assert), so when the hardware path exhausts its retry budget the guard
// can fail over mid-run — the shadow already holds the chip's state, no
// queued request is dropped, and the grant sequence continues exactly
// where the hardware would have taken it.
//
// Decision path, per cycle:
//   1. (optional transport model) FPGA acquires the SRAM bank — retried
//      across arbitration stalls.
//   2. Chip decision cycle — retried across injected stalls; the fallible
//      chip attempt mutates nothing on failure, so retry is trivially
//      safe.
//   3. Shadow decision cycle (lockstep mirror).
//   4. (optional transport model) host re-acquires the bank and
//      parity-reads the grant words — SEUs are retried.
// Any step exhausting its retries triggers failover; steps 1-2 exhaust
// *before* the decision, so the shadow serves the current cycle, while
// step 4 exhausts after it, so the chip's outcome stands and the shadow
// serves from the next cycle on.
#pragma once

#include <cstdint>

#include "dwcs/reference_scheduler.hpp"
#include "hw/scheduler_chip.hpp"
#include "hw/sram.hpp"
#include "robust/fault_plan.hpp"
#include "robust/health.hpp"
#include "robust/recovery.hpp"
#include "telemetry/instruments.hpp"

namespace ss::robust {

class GuardedScheduler {
 public:
  struct Options {
    RecoveryConfig recovery{};
    HealthMonitor::Options health{};
    /// Model the decision's SRAM transport (ownership handoffs + parity
    /// reads) so the kSramAcquire/kSramData fault sites are exercised.
    bool model_transport = false;
    std::size_t sram_words = 64;
    std::uint64_t sram_switch_ns = 2000;
  };

  /// The chip is held by reference (the endsystem owns it); `plan` may be
  /// null for a guard with the fault plane disabled.  Construct the guard
  /// before loading any slots: it pre-populates one shadow stream per
  /// chip slot so load_slot maps onto reload_stream.
  GuardedScheduler(hw::SchedulerChip& chip, FaultPlan* plan);
  GuardedScheduler(hw::SchedulerChip& chip, FaultPlan* plan, Options opt);

  void load_slot(hw::SlotId slot, const hw::SlotConfig& hw_cfg,
                 const dwcs::StreamSpec& sw_spec);
  void push_request(hw::SlotId slot, std::uint64_t arrival);
  void push_tagged_request(hw::SlotId slot, std::uint64_t tag,
                           std::uint64_t arrival);

  /// One decision cycle through whichever path is currently healthy.
  /// Post-failover, `block` mirrors `grants` (the software path has no
  /// separate block readout) and hw_cycles is 0.
  hw::DecisionOutcome run_decision_cycle();

  /// Allocation-free variant (`out` fully overwritten) — mirrors the
  /// chip's reuse overload for the endsystem hot loop.
  void run_decision_cycle(hw::DecisionOutcome& out);

  /// Abandon the hardware path now (operator-initiated failover, or the
  /// legacy inject_fault_at_grant contract).
  void force_failover();

  [[nodiscard]] bool failed_over() const { return failed_over_; }
  [[nodiscard]] HealthState health() const { return health_.state(); }
  [[nodiscard]] const RecoveryStats& stats() const { return stats_; }
  /// Modeled time lost to faults: attempt penalties + backoff + transport.
  [[nodiscard]] Nanos overhead_ns() const { return overhead_; }

  /// Authoritative scheduler state: the chip's until failover, the
  /// shadow's after (they are equal at the handoff by construction).
  [[nodiscard]] std::uint64_t vtime() const;
  /// Decisions served through the guard on either path.  (The shadow
  /// steps on every cycle, so its counter spans the failover seamlessly.)
  [[nodiscard]] std::uint64_t decision_cycles() const {
    return shadow_.decision_cycles();
  }
  [[nodiscard]] dwcs::StreamCounters counters(std::uint32_t slot) const;
  [[nodiscard]] std::uint32_t backlog(std::uint32_t slot) const;

  /// Attach live metrics (nullptr detaches); forwards to the health FSM
  /// and the fault plan.
  void attach_metrics(telemetry::RobustMetrics* m);

  /// Attach a decision-audit session (nullptr detaches); forwards to the
  /// chip (provenance + flight recorder) and the fault plan (fault
  /// context).  force_failover() then freezes the black box: the recorder
  /// stops at the failover point and an ss-audit-v1 dump is written
  /// (cause "failover") if the session carries a dump path.
  void attach_audit(telemetry::AuditSession* a);

 private:
  void shadow_decide(hw::DecisionOutcome& out);

  hw::SchedulerChip& chip_;
  FaultPlan* plan_;
  Options opt_;
  dwcs::ReferenceScheduler shadow_;
  hw::SramBank sram_;
  RecoveryStats stats_;
  HealthMonitor health_;
  bool failed_over_ = false;
  Nanos overhead_{0};
  telemetry::RobustMetrics* metrics_ = nullptr;
  telemetry::AuditSession* audit_ = nullptr;
};

}  // namespace ss::robust
