// recovery.hpp — the endsystem-side retry/backoff contract.
//
// Every fallible hardware transaction (PCI transfer, SRAM arbitration or
// parity-checked read, chip decision cycle) is driven through with_retry:
// bounded attempts, exponential backoff between them, and an overall
// per-transaction deadline.  The contract the fault campaign asserts is
// simple: an injected fault either *recovers* (a later attempt succeeds
// within the bound) or *exhausts*, and exhaustion is what triggers
// failover — never a silent wrong answer.
#pragma once

#include <algorithm>
#include <cstdint>

#include "hw/fault_hooks.hpp"
#include "robust/health.hpp"
#include "telemetry/instruments.hpp"
#include "util/sim_time.hpp"

namespace ss::robust {

struct RecoveryConfig {
  std::uint32_t max_retries = 8;        ///< attempts beyond the first
  std::uint64_t backoff_base_ns = 200;  ///< delay before the first retry
  double backoff_multiplier = 2.0;
  std::uint64_t backoff_cap_ns = 10'000;
  /// Total modeled time (attempt penalties + backoff) a single
  /// transaction may burn before it is declared exhausted even with
  /// retries remaining.
  std::uint64_t deadline_ns = 200'000;
};

/// Backoff delay before retry number `attempt` (0-based: attempt 0 is the
/// delay after the first failure).
[[nodiscard]] inline std::uint64_t backoff_delay_ns(const RecoveryConfig& cfg,
                                                    std::uint32_t attempt) {
  double d = static_cast<double>(cfg.backoff_base_ns);
  for (std::uint32_t i = 0; i < attempt; ++i) {
    d *= cfg.backoff_multiplier;
    if (d >= static_cast<double>(cfg.backoff_cap_ns)) {
      return cfg.backoff_cap_ns;
    }
  }
  return std::min(static_cast<std::uint64_t>(d), cfg.backoff_cap_ns);
}

/// Recovery activity, accumulated across all guarded transactions.
struct RecoveryStats {
  std::uint64_t faults = 0;      ///< failed attempts observed
  std::uint64_t retries = 0;     ///< re-attempts issued
  std::uint64_t recoveries = 0;  ///< transactions that succeeded after >=1 fault
  std::uint64_t exhausted = 0;   ///< transactions that hit the retry bound
  std::uint64_t failovers = 0;   ///< hardware abandoned for software
  std::uint64_t backoff_ns = 0;  ///< modeled time spent backing off
};

struct RetryResult {
  bool ok = false;
  Nanos elapsed{0};  ///< attempt penalties + successful cost + backoff
};

/// Drive one fallible transaction to completion or exhaustion.  `attempt`
/// is called repeatedly and must return hw::FallibleNanos; `health` and
/// `metrics` may be null.
template <typename F>
RetryResult with_retry(const RecoveryConfig& cfg, RecoveryStats& stats,
                       HealthMonitor* health,
                       telemetry::RobustMetrics* metrics, F&& attempt) {
  std::uint64_t total = 0;
  for (std::uint32_t a = 0;; ++a) {
    const hw::FallibleNanos r = attempt();
    total += count(r.ns);
    if (r.ok) {
      if (health) health->on_clean();
      if (a > 0) {
        ++stats.recoveries;
        SS_TELEM(if (metrics) metrics->recoveries->add(1));
      }
      return {true, Nanos{total}};
    }
    ++stats.faults;
    if (health) health->on_fault();
    if (a >= cfg.max_retries || total >= cfg.deadline_ns) {
      ++stats.exhausted;
      SS_TELEM(if (metrics) metrics->retry_exhausted->add(1));
      return {false, Nanos{total}};
    }
    const std::uint64_t delay = backoff_delay_ns(cfg, a);
    total += delay;
    stats.backoff_ns += delay;
    ++stats.retries;
    SS_TELEM(if (metrics) {
      metrics->retries->add(1);
      metrics->backoff_ns->add(delay);
    });
  }
}

}  // namespace ss::robust
