// ext_future_work — the paper's Section 6 extensions, implemented and
// measured:
//
//   * compute-ahead Register Base blocks (predicated next-state
//     precomputation): PRIORITY_UPDATE collapses from 3 cycles to 1 at a
//     modest per-slot area cost — measured on the cycle-level chip, with
//     a functional-equivalence check;
//   * Virtex-II: faster fabric plus hard 18x18 multipliers absorbing the
//     Decision block's window-constraint cross-products;
//   * "a system with hundreds of streams": the framework's aggregated
//     solution for 256 and 1024 flows.
#include <cstdio>

#include "bench_common.hpp"
#include "core/framework.hpp"
#include "hw/area_model.hpp"
#include "hw/scheduler_chip.hpp"
#include "hw/timing_model.hpp"
#include "util/csv.hpp"

namespace {

ss::hw::SchedulerChip make_chip(bool compute_ahead) {
  ss::hw::ChipConfig cfg;
  cfg.slots = 8;
  cfg.cmp_mode = ss::hw::ComparisonMode::kDwcsFull;
  cfg.compute_ahead = compute_ahead;
  ss::hw::SchedulerChip chip(cfg);
  for (unsigned i = 0; i < 8; ++i) {
    ss::hw::SlotConfig sc;
    sc.mode = ss::hw::SlotMode::kDwcs;
    sc.period = 2 + i % 3;
    sc.loss_num = 1;
    sc.loss_den = 4;
    sc.initial_deadline = ss::hw::Deadline{i + 1};
    chip.load_slot(static_cast<ss::hw::SlotId>(i), sc);
  }
  return chip;
}

}  // namespace

int main() {
  using namespace ss;
  bench::banner("Section 6 extensions",
                "Compute-ahead registers, Virtex-II, hundreds of streams");
  CsvWriter csv(bench::results_dir() + "ext_future_work.csv",
                {"experiment", "variant", "value"});

  // ---- compute-ahead --------------------------------------------------
  bench::section("compute-ahead Register Base blocks (predication)");
  auto base = make_chip(false);
  auto ahead = make_chip(true);
  std::uint64_t divergences = 0;
  for (int k = 0; k < 20000; ++k) {
    for (unsigned i = 0; i < 8; ++i) {
      if ((k + i) % 3 != 0) continue;
      base.push_request(static_cast<hw::SlotId>(i));
      ahead.push_request(static_cast<hw::SlotId>(i));
    }
    const auto a = base.run_decision_cycle();
    const auto b = ahead.run_decision_cycle();
    if (a.grants.size() != b.grants.size()) ++divergences;
    for (std::size_t g = 0; g < a.grants.size() && g < b.grants.size(); ++g) {
      if (a.grants[g].slot != b.grants[g].slot) ++divergences;
    }
  }
  const double base_cpd = static_cast<double>(base.hw_cycles()) /
                          base.decision_cycles();
  const double ahead_cpd = static_cast<double>(ahead.hw_cycles()) /
                           ahead.decision_cycles();
  std::printf("cycles per decision: %.1f baseline -> %.1f compute-ahead "
              "(%.0f%% faster); decision outcomes identical across 20000 "
              "cycles: %s\n",
              base_cpd, ahead_cpd, (1 - ahead_cpd / base_cpd) * 100,
              divergences == 0 ? "yes" : "NO");
  hw::AreaModel with_ca;
  with_ca.set_compute_ahead(true);
  const hw::AreaModel without;
  std::printf("area cost: %u -> %u slices at 8 slots (+%u per slot for the "
              "predicated adjust path)\n",
              without.area(8, hw::ArchConfig::kWinnerRouting).total(),
              with_ca.area(8, hw::ArchConfig::kWinnerRouting).total(),
              hw::AreaModel::kComputeAheadSlicesPerSlot);
  csv.cell("compute_ahead");
  csv.cell("cycles_per_decision_base");
  csv.cell(base_cpd);
  csv.endrow();
  csv.cell("compute_ahead");
  csv.cell("cycles_per_decision_ahead");
  csv.cell(ahead_cpd);
  csv.endrow();

  // ---- Virtex-II -------------------------------------------------------
  bench::section("Virtex-II projection (hard multipliers + faster fabric)");
  const hw::AreaModel v1(hw::FpgaFamily::kVirtexI);
  const hw::AreaModel v2(hw::FpgaFamily::kVirtexII);
  std::printf("%6s | %12s %9s %10s | %12s %9s %10s\n", "slots", "V1 slices",
              "V1 MHz", "V1 device", "V2 slices", "V2 MHz", "V2 device");
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    const auto cfg = hw::ArchConfig::kBlockArchitecture;
    const hw::Device* d1 = v1.smallest_fit(n, cfg);
    const hw::Device* d2 = v2.smallest_fit(n, cfg);
    std::printf("%6u | %12u %9.1f %10s | %12u %9.1f %10s\n", n,
                v1.area(n, cfg).total(), v1.clock_mhz(n, cfg),
                d1 ? d1->name.c_str() : "-", v2.area(n, cfg).total(),
                v2.clock_mhz(n, cfg), d2 ? d2->name.c_str() : "-");
    csv.cell("virtex2");
    csv.cell("clock_mhz_n" + std::to_string(n));
    csv.cell(v2.clock_mhz(n, cfg));
    csv.endrow();
  }
  const hw::TimingModel tm2(v2, hw::ControlTiming{});
  std::printf("with Virtex-II clocks, 64 B frames at 10 Gbps become "
              "feasible for WR up to %s slots\n",
              tm2.feasible(32, hw::ArchConfig::kWinnerRouting, false, 64,
                           10.0)
                  ? "32"
                  : (tm2.feasible(16, hw::ArchConfig::kWinnerRouting, false,
                                  64, 10.0)
                         ? "16"
                         : "8"));

  // ---- hundreds of streams ---------------------------------------------
  bench::section("\"a system with hundreds of streams\" (Section 6)");
  const core::SolutionFramework fw;
  for (unsigned streams : {256u, 512u, 1024u}) {
    const core::Solution s = fw.solve({streams, 1500, 1.0});
    std::printf("%4u flows @ 1 Gb: %u slots x %u streamlets each on %s — "
                "%s, per-class delay bound only (the aggregation tradeoff)\n",
                streams, s.slots, s.streams_per_slot, s.device.c_str(),
                s.feasible ? "feasible" : "infeasible");
    csv.cell("hundreds_of_streams");
    csv.cell("streamlets_per_slot_" + std::to_string(streams));
    csv.cell(static_cast<std::uint64_t>(s.streams_per_slot));
    csv.endrow();
  }
  std::printf("\nCSV: results/ext_future_work.csv\n");
  return 0;
}
