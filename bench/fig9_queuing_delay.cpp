// fig9_queuing_delay — reproduces Figure 9: "Queuing Delay of Streams 1,
// 2, 3 and 4".
//
// Same endsystem run as Figure 8, but with the paper's bursty traffic
// generator: "The zig-zag formation in Figure 9 is because of the traffic
// generator, which introduces a multi-ms inter-burst delay after the
// first 4000 frames."  Delay climbs while a burst drains and collapses
// across each inter-burst gap; stream 4 (the largest share) shows the
// lowest delay, "consistent with Figure 8".
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/endsystem.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"

int main() {
  using namespace ss;
  bench::banner("Figure 9", "Queuing delay under bursty arrivals (1:1:2:4)");

  core::EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.link_gbps = 0.128;
  core::Endsystem es(cfg);
  for (double w : {1.0, 1.0, 2.0, 4.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    r.droppable = false;
    // Bursts of 100 back-to-back frames, then a 100 ms inter-burst gap
    // (the paper's "multi-ms inter-burst delay", scaled to our link so
    // even the slowest stream drains its burst inside the gap).
    es.add_stream(
        r, std::make_unique<queueing::BurstyGen>(100, 100, 100'000'000),
        1500);
  }
  es.run(4000);  // forty bursts per stream
  const auto& mon = es.monitor();

  bench::section("delay aggregates (us)");
  std::printf("%8s %12s %12s %12s %12s\n", "stream", "mean", "jitter",
              "min-burst", "frames");
  for (unsigned i = 0; i < 4; ++i) {
    std::printf("%8u %12.0f %12.0f %12s %12llu\n", i + 1,
                mon.mean_delay_us(i), mon.mean_jitter_us(i), "-",
                static_cast<unsigned long long>(mon.frames(i)));
  }
  std::printf("stream 4 lowest mean delay: %s (paper: \"note the reduced "
              "delay for Stream 4\")\n",
              (mon.mean_delay_us(3) < mon.mean_delay_us(0) &&
               mon.mean_delay_us(3) < mon.mean_delay_us(1) &&
               mon.mean_delay_us(3) < mon.mean_delay_us(2))
                  ? "REPRODUCED"
                  : "DIVERGED");

  bench::section("delay time series (the zig-zag)");
  AsciiChart chart("Figure 9: per-frame queuing delay", "time (ms)",
                   "delay (ms)", 68, 18);
  CsvWriter csv(bench::results_dir() + "fig9_delay.csv",
                {"stream", "departure_ms", "delay_us"});
  const char glyphs[4] = {'1', '2', '3', '4'};
  for (unsigned i = 0; i < 4; ++i) {
    Series s;
    s.name = "stream " + std::to_string(i + 1);
    s.glyph = glyphs[i];
    const auto& series = mon.delay_series(i);
    // Thin the series for the chart; CSV keeps every 8th point.
    for (std::size_t k = 0; k < series.size(); k += 8) {
      s.x.push_back(static_cast<double>(series[k].departure_ns) * 1e-6);
      s.y.push_back(series[k].delay_us / 1000.0);
      csv.cell(std::uint64_t{i + 1});
      csv.cell(static_cast<double>(series[k].departure_ns) * 1e-6);
      csv.cell(series[k].delay_us);
      csv.endrow();
    }
    chart.add(std::move(s));
  }
  std::fputs(chart.render().c_str(), stdout);

  // Quantify the zig-zag: collapses of the delay envelope across gaps.
  int collapses = 0;
  const auto& s0 = mon.delay_series(0);
  for (std::size_t k = 1; k < s0.size(); ++k) {
    if (s0[k - 1].delay_us - s0[k].delay_us > 10'000.0) ++collapses;
  }
  std::printf("\nzig-zag verdict: %d delay collapses across inter-burst "
              "gaps (expect ~one per burst): %s\n",
              collapses, collapses >= 5 ? "REPRODUCED" : "DIVERGED");
  std::printf("CSV: results/fig9_delay.csv\n");
  return 0;
}
