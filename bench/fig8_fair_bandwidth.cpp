// fig8_fair_bandwidth — reproduces Figure 8: "Fair Bandwidth Allocation of
// Streams (1,2,3,4) with ratios 1:1:2:4".
//
// The paper's run: the ShareStreams endsystem (host Queue Manager +
// FPGA scheduler over PCI), service constraints set for a 1:1:2:4 split,
// 64000 16-bit arrival times transferred per queue, output bandwidth
// measured without network-stack system calls.  Figure 10's scale fixes
// the absolute split at 2.0/2.0/4.0/8.0 MBps (16 MBps link), which a
// 0.128 Gbps link model reproduces.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/endsystem.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"

int main() {
  using namespace ss;
  bench::banner("Figure 8", "Fair bandwidth allocation 1:1:2:4");

  core::EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.link_gbps = 0.128;  // 16 MBps: the figure's bandwidth scale
  cfg.bw_window_ns = 20'000'000;
  core::Endsystem es(cfg);
  const double weights[4] = {1, 1, 2, 4};
  for (double w : weights) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    r.droppable = false;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(100), 1500);
  }
  // 64000 arrival-times transferred in total; weight-proportional per
  // queue so all four streams stay contended to the end of the run (the
  // figure's steady-state region).
  const std::vector<std::uint64_t> frames = {8000, 8000, 16000, 32000};
  const auto rep = es.run(frames);
  const auto& mon = es.monitor();

  bench::section("mean output bandwidth (MBps)");
  std::printf("%8s %12s %12s %14s\n", "stream", "measured", "paper(scale)",
              "ratio vs S1");
  const double paper[4] = {2.0, 2.0, 4.0, 8.0};
  for (unsigned i = 0; i < 4; ++i) {
    std::printf("%8u %12.2f %12.1f %14.2f\n", i + 1, mon.mean_mbps(i),
                paper[i], mon.mean_mbps(i) / mon.mean_mbps(0));
  }
  std::printf("frames delivered: %llu   link time: %.3f s   decision "
              "cycles: %llu\n",
              static_cast<unsigned long long>(rep.frames),
              static_cast<double>(rep.link_ns) * 1e-9,
              static_cast<unsigned long long>(rep.decision_cycles));

  bench::section("bandwidth time series (the figure)");
  AsciiChart chart("Figure 8: output bandwidth over time", "time (ms)",
                   "MBps", 68, 18);
  const char glyphs[4] = {'1', '2', '3', '4'};
  CsvWriter csv(bench::results_dir() + "fig8_bandwidth.csv",
                {"stream", "window_end_ms", "mbps"});
  for (unsigned i = 0; i < 4; ++i) {
    Series s;
    s.name = "stream " + std::to_string(i + 1);
    s.glyph = glyphs[i];
    for (const auto& p : mon.bandwidth_series(i)) {
      s.x.push_back(static_cast<double>(p.window_end_ns) * 1e-6);
      s.y.push_back(p.mbps);
      csv.cell(std::uint64_t{i + 1});
      csv.cell(static_cast<double>(p.window_end_ns) * 1e-6);
      csv.cell(p.mbps);
      csv.endrow();
    }
    chart.add(std::move(s));
  }
  chart.set_y_range(0, 10);
  std::fputs(chart.render().c_str(), stdout);
  std::printf("\nshape verdict: ratios %.2f : %.2f : %.2f : %.2f vs paper "
              "1 : 1 : 2 : 4\n",
              mon.mean_mbps(0) / mon.mean_mbps(0),
              mon.mean_mbps(1) / mon.mean_mbps(0),
              mon.mean_mbps(2) / mon.mean_mbps(0),
              mon.mean_mbps(3) / mon.mean_mbps(0));
  std::printf("CSV: results/fig8_bandwidth.csv\n");
  return 0;
}
