// fig1b_complexity — reproduces Figure 1(b): "Implementation Complexity of
// Packet Schedulers".
//
// The paper's chart stacks scheduling disciplines by implementation
// complexity (state storage, attribute-comparison width, winner-selection
// and priority-update work).  This bench regenerates that stacking from
// the quantitative model in ss_core::discipline_complexity and sweeps the
// stream count to show how each discipline's per-decision work scales.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/framework.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"

int main() {
  using namespace ss;
  bench::banner("Figure 1(b)", "Implementation complexity of packet schedulers");

  bench::section("complexity model at N = 32 streams");
  std::printf("%-28s %6s %6s %7s %10s %10s %10s\n", "discipline", "attrs",
              "bits", "update", "dec ops", "upd ops", "index");
  for (const auto& c : core::discipline_complexity(32)) {
    std::printf("%-28s %6u %6u %7s %10.1f %10.1f %10.1f\n",
                c.discipline.c_str(), c.attrs_compared, c.state_bits,
                c.per_decision_update ? "yes" : "no", c.decision_ops,
                c.update_ops, c.complexity_index);
  }
  std::printf("\npaper's qualitative stacking: FCFS < static-priority < "
              "fair-queuing tags < window-constrained (DWCS)\n");

  bench::section("complexity index vs stream count (the scaling sweep)");
  CsvWriter csv(bench::results_dir() + "fig1b_complexity.csv",
                {"streams", "discipline", "attrs", "state_bits",
                 "decision_ops", "update_ops", "complexity_index"});
  AsciiChart chart("Figure 1(b): complexity index vs N", "streams N",
                   "complexity index (FCFS = 1)", 64, 18);
  chart.set_log_x(true);
  const std::vector<unsigned> sweep = {4, 8, 16, 32, 64, 128, 256};
  const char glyphs[] = {'f', 's', 'r', 'd', 'e', 'w', 'D'};
  std::vector<Series> series;
  for (unsigned n : sweep) {
    const auto v = core::discipline_complexity(n);
    if (series.empty()) {
      series.resize(v.size());
      for (std::size_t i = 0; i < v.size(); ++i) {
        series[i].name = v[i].discipline;
        series[i].glyph = glyphs[i % sizeof glyphs];
      }
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
      series[i].x.push_back(n);
      series[i].y.push_back(v[i].complexity_index);
      csv.cell(std::uint64_t{n});
      csv.cell(v[i].discipline);
      csv.cell(std::uint64_t{v[i].attrs_compared});
      csv.cell(std::uint64_t{v[i].state_bits});
      csv.cell(v[i].decision_ops);
      csv.cell(v[i].update_ops);
      csv.cell(v[i].complexity_index);
      csv.endrow();
    }
  }
  for (auto& s : series) chart.add(std::move(s));
  std::fputs(chart.render().c_str(), stdout);
  std::printf("\nCSV: results/fig1b_complexity.csv (%zu rows)\n",
              csv.rows_written());
  return 0;
}
