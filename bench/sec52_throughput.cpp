// sec52_throughput — reproduces Section 5.2's performance comparison:
//
//   * ShareStreams switch-linecard: 7.6 M packets/s (4 slots, Virtex-I,
//     no host software in the decision path);
//   * ShareStreams endsystem (PIII-550, Linux 2.4): 469,483 pps excluding
//     PCI transfer time, 299,065 pps including PCI PIO;
//   * software routers: Click 333 k pps (300 k with SFQ, PIII-700),
//     router plugins (DRR) 28 k pps, SIGMETRICS'01 ~300 k pps.
//
// This bench regenerates each row: the linecard rate from the cycle-level
// chip at the RC1000's 100 MHz; the endsystem from the measured host drain
// loop with the calibrated PCI model; the software rows by timing this
// host's per-packet scheduling cost for SFQ/DRR/WFQ and the DWCS software
// reference.  Absolute numbers differ (2026 host vs 2002 hosts); the
// paper's ordering and the PCI penalty are the reproduced shape.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/endsystem.hpp"
#include "core/linecard.hpp"
#include "dwcs/reference_scheduler.hpp"
#include "sched/drr.hpp"
#include "sched/sfq.hpp"
#include "sched/wfq.hpp"
#include "util/csv.hpp"

namespace {

double time_discipline(ss::sched::Discipline& d, std::size_t packets) {
  using clock = std::chrono::steady_clock;
  // Keep 64 streams backlogged; measure enqueue+dequeue per packet (the
  // per-packet scheduling work a software router performs).
  const auto t0 = clock::now();
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < packets; ++i) {
    d.enqueue({static_cast<std::uint32_t>(i % 64), 1500, i, seq++});
    (void)d.dequeue(i);
  }
  const auto t1 = clock::now();
  const double sec = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(packets) / sec;
}

double time_dwcs_reference(std::size_t decisions) {
  using clock = std::chrono::steady_clock;
  ss::dwcs::ReferenceScheduler sched;
  for (int i = 0; i < 16; ++i) {
    ss::dwcs::StreamSpec s;
    s.mode = ss::dwcs::StreamMode::kDwcs;
    s.period = 1 + i % 4;
    s.loss_num = 1;
    s.loss_den = 4;
    s.initial_deadline = 1 + i;
    sched.add_stream(s);
  }
  const auto t0 = clock::now();
  for (std::size_t k = 0; k < decisions; ++k) {
    sched.push_request(static_cast<std::uint32_t>(k % 16));
    sched.run_decision_cycle();
  }
  const auto t1 = clock::now();
  return static_cast<double>(decisions) /
         std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace ss;
  bench::banner("Section 5.2", "Throughput comparison: linecard, endsystem, "
                               "software routers");
  CsvWriter csv(bench::results_dir() + "sec52_throughput.csv",
                {"row", "measured_pps", "paper_pps"});

  // ---- linecard -------------------------------------------------------
  core::LinecardConfig lcfg;
  lcfg.chip.slots = 4;
  lcfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  lcfg.clock_mhz = 100.0;  // the RC1000 ceiling the paper quotes
  core::Linecard lc(lcfg);
  for (unsigned i = 0; i < 4; ++i) {
    hw::SlotConfig sc;
    sc.mode = hw::SlotMode::kEdf;
    sc.period = 4;
    sc.initial_deadline = hw::Deadline{i + 1};
    lc.load_slot(static_cast<hw::SlotId>(i), sc);
  }
  for (int k = 0; k < 50000; ++k) {
    for (unsigned i = 0; i < 4; ++i) lc.on_fabric_arrival(i, 0);
  }
  const auto lrep = lc.run(200000);
  csv.cell("linecard-4slot-100MHz");
  csv.cell(lrep.packets_per_sec);
  csv.cell(7.6e6);
  csv.endrow();

  // ---- endsystem ------------------------------------------------------
  core::EndsystemConfig ecfg;
  ecfg.chip.slots = 4;
  ecfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  ecfg.pci_batch = 1;  // the paper's PIO configuration
  ecfg.keep_series = false;
  core::Endsystem es(ecfg);
  for (double w : {1.0, 1.0, 2.0, 4.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    r.droppable = false;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(100), 1500);
  }
  const auto erep = es.run(std::vector<std::uint64_t>{8000, 8000, 16000, 32000});
  csv.cell("endsystem-excl-pci");
  csv.cell(erep.pps_excl_pci);
  csv.cell(469483.0);
  csv.endrow();
  csv.cell("endsystem-incl-pci-pio");
  csv.cell(erep.pps_incl_pci);
  csv.cell(299065.0);
  csv.endrow();

  // ---- software baselines on this host -------------------------------
  sched::Sfq sfq(128);
  sched::Drr drr(1500);
  sched::Wfq wfq;
  const double sfq_pps = time_discipline(sfq, 2'000'000);
  const double drr_pps = time_discipline(drr, 2'000'000);
  const double wfq_pps = time_discipline(wfq, 1'000'000);
  const double dwcs_pps = time_dwcs_reference(500'000);
  csv.cell("software-sfq");
  csv.cell(sfq_pps);
  csv.cell(300000.0);
  csv.endrow();
  csv.cell("software-drr");
  csv.cell(drr_pps);
  csv.cell(28279.0);
  csv.endrow();
  csv.cell("software-wfq");
  csv.cell(wfq_pps);
  csv.cell(0.0);
  csv.endrow();
  csv.cell("software-dwcs-reference");
  csv.cell(dwcs_pps);
  csv.cell(20000.0);  // ~50 us/decision on the UltraSPARC of [27]
  csv.endrow();

  bench::section("results (pps)");
  std::printf("%-34s %14s %14s\n", "configuration", "measured", "paper");
  std::printf("%-34s %14.3e %14.3e  (cycle model @100 MHz)\n",
              "linecard, 4 slots, WR", lrep.packets_per_sec, 7.6e6);
  std::printf("%-34s %14.3e %14.3e  (this host's drain loop)\n",
              "endsystem, excl. PCI", erep.pps_excl_pci, 4.69483e5);
  std::printf("%-34s %14.3e %14.3e  (modeled PCI PIO added)\n",
              "endsystem, incl. PCI PIO", erep.pps_incl_pci, 2.99065e5);
  std::printf("%-34s %14.3e %14.3e  (Click/SFQ, PIII-700)\n",
              "software SFQ (this host)", sfq_pps, 3.0e5);
  std::printf("%-34s %14.3e %14.3e  (router plugins, PPro)\n",
              "software DRR (this host)", drr_pps, 2.8279e4);
  std::printf("%-34s %14.3e %14s\n", "software WFQ/SCFQ (this host)",
              wfq_pps, "-");
  std::printf("%-34s %14.3e %14.3e  ([27]: ~50us/decision)\n",
              "software DWCS (this host)", dwcs_pps, 2.0e4);

  bench::section("shape verdicts (host-independent relations)");
  const double pci_drop = 1.0 - erep.pps_incl_pci / erep.pps_excl_pci;
  std::printf("linecard rate ~7.6M @100MHz:            %s (%.2fM; the "
              "13-cycle sustained decision)\n",
              std::abs(lrep.packets_per_sec - 7.6e6) < 0.2e6 ? "REPRODUCED"
                                                             : "DIVERGED",
              lrep.packets_per_sec * 1e-6);
  std::printf("PCI PIO costs real throughput:          %s (%.0f%% drop; "
              "paper 36%% — the fixed per-packet bus cost bites harder "
              "the faster the host loop is)\n",
              pci_drop > 0.05 ? "REPRODUCED" : "DIVERGED", pci_drop * 100);
  std::printf("PCI-attached endsystem << linecard:     %s (%.1fx gap; the "
              "reason the linecard realization exists)\n",
              lrep.packets_per_sec > 4 * erep.pps_incl_pci ? "REPRODUCED"
                                                           : "DIVERGED",
              lrep.packets_per_sec / erep.pps_incl_pci);
  const double hw_decision_ns = 13.0 * 1000.0 / 100.0;  // 13 cyc @ 100 MHz
  const double sw_decision_ns = 1e9 / dwcs_pps;
  std::printf("hw decision beats sw DWCS decision:     %s (%.0f ns fixed "
              "hardware vs %.0f ns on THIS host; [27] measured ~50000 ns "
              "on a 300 MHz UltraSPARC)\n",
              hw_decision_ns < sw_decision_ns ? "REPRODUCED" : "DIVERGED",
              hw_decision_ns, sw_decision_ns);
  std::printf("\nNote: software rows ran on this host; the paper's ran on "
              "1997-2001 hardware (PIII-550/700, PPro, UltraSPARC-300).  "
              "Host-independent orderings, not absolutes, carry.\n");
  std::printf("CSV: results/sec52_throughput.csv\n");
  return 0;
}
