// fig7_area_clock — reproduces Figure 7: "Area-Clock Rate Characteristics
// of Architecture (Virtex I)".
//
// Sweeps 4..32 stream-slots for the Base Architecture (BA, sorted-list
// block) and winner-only routing (WR, max-finding), printing slice usage
// and achievable clock, and checks every relation the paper's text states:
// linear area growth, near-identical BA/WR area, WR's flatter clock, the
// ~20% BA penalty at 8/16 slots and ~10% at 32, and the packet-time
// feasibility claims for gigabit and 10 Gb links.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "hw/area_model.hpp"
#include "hw/timing_model.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/sim_time.hpp"

int main() {
  using namespace ss;
  using hw::ArchConfig;
  bench::banner("Figure 7", "Area & clock-rate vs stream-slots (Virtex-I model)");

  const hw::AreaModel model;
  const hw::TimingModel timing(model, hw::ControlTiming{});
  const std::vector<unsigned> slots = {4, 8, 16, 32};

  CsvWriter csv(bench::results_dir() + "fig7_area_clock.csv",
                {"slots", "config", "control_slices", "register_slices",
                 "decision_slices", "routing_slices", "total_slices",
                 "clock_mhz", "decision_latency_ns", "smallest_device"});

  bench::section("area and clock (paper per-block areas: control 22, "
                 "decision 190, register 150 slices)");
  std::printf("%6s %6s %14s %11s %18s %10s\n", "slots", "cfg",
              "total slices", "clock MHz", "decision latency", "device");
  AsciiChart area_chart("Figure 7a: slices vs stream-slots", "stream-slots",
                        "Virtex-I slices", 64, 16);
  AsciiChart clk_chart("Figure 7b: clock vs stream-slots", "stream-slots",
                       "MHz", 64, 16);
  Series a_ba{"BA", {}, {}, 'B'}, a_wr{"WR", {}, {}, 'w'};
  Series c_ba{"BA", {}, {}, 'B'}, c_wr{"WR", {}, {}, 'w'};

  for (unsigned n : slots) {
    for (const auto cfg : {ArchConfig::kBlockArchitecture,
                           ArchConfig::kWinnerRouting}) {
      const bool ba = cfg == ArchConfig::kBlockArchitecture;
      const auto b = model.area(n, cfg);
      const double mhz = model.clock_mhz(n, cfg);
      const auto rep = timing.report(n, cfg, ba);
      const hw::Device* dev = model.smallest_fit(n, cfg);
      std::printf("%6u %6s %14u %11.1f %15.0f ns %10s\n", n,
                  ba ? "BA" : "WR", b.total(), mhz, rep.decision_latency_ns,
                  dev ? dev->name.c_str() : "none");
      (ba ? a_ba : a_wr).x.push_back(n);
      (ba ? a_ba : a_wr).y.push_back(b.total());
      (ba ? c_ba : c_wr).x.push_back(n);
      (ba ? c_ba : c_wr).y.push_back(mhz);
      csv.cell(std::uint64_t{n});
      csv.cell(ba ? "BA" : "WR");
      csv.cell(std::uint64_t{b.control_slices});
      csv.cell(std::uint64_t{b.register_slices});
      csv.cell(std::uint64_t{b.decision_slices});
      csv.cell(std::uint64_t{b.routing_slices});
      csv.cell(std::uint64_t{b.total()});
      csv.cell(mhz);
      csv.cell(rep.decision_latency_ns);
      csv.cell(dev ? dev->name : "none");
      csv.endrow();
    }
  }
  area_chart.add(a_ba);
  area_chart.add(a_wr);
  clk_chart.add(c_ba);
  clk_chart.add(c_wr);
  std::fputs(area_chart.render().c_str(), stdout);
  std::fputs(clk_chart.render().c_str(), stdout);

  bench::section("paper relations check");
  auto pen = [&](unsigned n) {
    const double wr = model.clock_mhz(n, ArchConfig::kWinnerRouting);
    return (wr - model.clock_mhz(n, ArchConfig::kBlockArchitecture)) / wr;
  };
  std::printf("BA clock penalty:  8 slots %.0f%% (paper: ~20%%)   16 slots "
              "%.0f%% (~20%%)   32 slots %.0f%% (~10%%)\n",
              pen(8) * 100, pen(16) * 100, pen(32) * 100);
  std::printf("decision cycles (sort): 4->%u  8->%u  16->%u  32->%u  "
              "(paper: 2/3/4/5)\n",
              hw::schedule_passes(hw::SortSchedule::kPerfectShuffle, 4),
              hw::schedule_passes(hw::SortSchedule::kPerfectShuffle, 8),
              hw::schedule_passes(hw::SortSchedule::kPerfectShuffle, 16),
              hw::schedule_passes(hw::SortSchedule::kPerfectShuffle, 32));

  bench::section("packet-time feasibility (paper: all gigabit frames + "
                 "1500B at 10Gbps)");
  std::printf("%6s %6s | %13s %13s %13s %13s\n", "slots", "cfg", "64B@1G",
              "1500B@1G", "1500B@10G", "64B@10G");
  for (unsigned n : slots) {
    for (const auto cfg : {ArchConfig::kBlockArchitecture,
                           ArchConfig::kWinnerRouting}) {
      const bool ba = cfg == ArchConfig::kBlockArchitecture;
      auto f = [&](std::uint64_t bytes, double gbps) {
        return timing.feasible(n, cfg, ba, bytes, gbps) ? "meets" : "MISSES";
      };
      std::printf("%6u %6s | %13s %13s %13s %13s\n", n, ba ? "BA" : "WR",
                  f(64, 1.0), f(1500, 1.0), f(1500, 10.0), f(64, 10.0));
    }
  }
  std::printf("\nCSV: results/fig7_area_clock.csv\n");
  return 0;
}
