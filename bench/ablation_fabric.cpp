// ablation_fabric — which fabric should feed the line cards?
//
// The linecard realization (Figure 2) takes "packets arriving from the
// switch fabric" as given; this ablation compares the two classic fabric
// organizations feeding it, on identical traffic:
//
//   * output-queued crossbar at speedup S (simple, but S=1 suffers
//     head-of-line blocking and S=N is expensive memory bandwidth);
//   * input-queued VOQ switch with iSLIP matching (speedup 1, no HOL).
//
// Swept: offered load and hotspot skew; reported: delivered throughput,
// mean fabric delay, and losses by mechanism.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "fabric/crossbar.hpp"
#include "fabric/voq_switch.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

struct Outcome {
  double throughput;   ///< delivered / offered
  double mean_delay;   ///< fabric cycles from enqueue to delivery
  std::uint64_t drops;
};

constexpr unsigned kPorts = 8;
constexpr int kCycles = 20000;

// dst distribution: with probability `skew` target port 0, else uniform.
template <typename Fabric>
Outcome run(Fabric& fab, double load, double skew, ss::Rng& rng) {
  std::uint64_t offered = 0, delivered = 0, delay = 0;
  for (int t = 0; t < kCycles; ++t) {
    for (unsigned i = 0; i < kPorts; ++i) {
      if (!rng.chance(load)) continue;
      ss::fabric::FabricFrame f;
      f.output_port = rng.chance(skew)
                          ? 0
                          : static_cast<std::uint32_t>(rng.below(kPorts));
      ++offered;
      fab.offer(i, f);
    }
    fab.cycle();
    ss::fabric::FabricFrame f;
    for (unsigned j = 0; j < kPorts; ++j) {
      while (fab.pull(j, f)) {
        ++delivered;
        delay += fab.cycles() - f.enq_cycle;
      }
    }
  }
  Outcome o{};
  o.throughput = offered ? static_cast<double>(delivered) / offered : 0;
  o.mean_delay = delivered ? static_cast<double>(delay) / delivered : 0;
  return o;
}

}  // namespace

int main() {
  using namespace ss;
  bench::banner("Ablation (fabric)",
                "Output-queued crossbar vs VOQ/iSLIP feeding the line cards");
  CsvWriter csv(bench::results_dir() + "ablation_fabric.csv",
                {"fabric", "load", "skew", "throughput", "mean_delay",
                 "drops"});

  bench::section("8 ports, 20000 cell times");
  std::printf("%6s %6s | %-14s %10s %10s %9s\n", "load", "skew", "fabric",
              "thru", "delay", "drops");
  for (const double load : {0.5, 0.8, 0.95}) {
    for (const double skew : {0.0, 0.5}) {
      Rng rng(7000 + static_cast<std::uint64_t>(load * 100 + skew * 10));
      fabric::Crossbar oq1(kPorts, kPorts, 1, 512);
      fabric::Crossbar oq4(kPorts, kPorts, 4, 512);
      fabric::VoqSwitch voq(kPorts, kPorts, 512);
      struct Row {
        const char* name;
        Outcome o;
        std::uint64_t drops;
      };
      Rng r1 = rng, r2 = rng, r3 = rng;  // identical traffic per fabric
      Row rows[3] = {
          {"OQ speedup 1", run(oq1, load, skew, r1),
           oq1.input_drops() + oq1.staging_drops()},
          {"OQ speedup 4", run(oq4, load, skew, r2),
           oq4.input_drops() + oq4.staging_drops()},
          {"VOQ iSLIP", run(voq, load, skew, r3), voq.drops()},
      };
      for (const Row& row : rows) {
        std::printf("%6.2f %6.2f | %-14s %10.3f %10.1f %9llu\n", load, skew,
                    row.name, row.o.throughput, row.o.mean_delay,
                    static_cast<unsigned long long>(row.drops));
        csv.cell(row.name);
        csv.cell(load);
        csv.cell(skew);
        csv.cell(row.o.throughput);
        csv.cell(row.o.mean_delay);
        csv.cell(row.drops);
        csv.endrow();
      }
    }
  }

  bench::section("reading");
  std::printf("* uniform traffic: VOQ at speedup 1 tracks the speedup-4 "
              "crossbar (0.99+ through 95%% load) while the speedup-1 "
              "FIFO crossbar loses a third of it to head-of-line "
              "blocking;\n");
  std::printf("* hotspot traffic (half of everything to port 0, an "
              "inadmissible 2.25x oversubscription of that port): the "
              "speedup-1 FIFO collapses globally (frames for idle ports "
              "strand behind hotspot heads: 0.44 -> 0.23 throughput); VOQ "
              "isolates the damage to the hot port and keeps the rest "
              "flowing at speedup 1;\n");
  std::printf("* the speedup-4 crossbar shows 1.0 because it pushes the "
              "hotspot overload into port-0's output queue — the loss "
              "just moves downstream to the line card, at 4x the fabric "
              "memory bandwidth.  VOQ enforces the port rate inside the "
              "fabric; that plus per-port ShareStreams scheduling is the "
              "production shape.\n");
  std::printf("\nCSV: results/ablation_fabric.csv\n");
  return 0;
}
