// ablation_hwpq — quantifies Section 3's related-work argument: why a
// heap / systolic queue / shift-register chain cannot serve as the unified
// canonical architecture.
//
// Two axes, swept over queue capacity N:
//   * AREA: per-element Decision blocks (systolic, shift-register) vs one
//     comparator (heap) vs the shuffle's N/2 blocks;
//   * RE-SORT COST: the per-decision-cycle price a window-constrained
//     discipline (priorities rewritten every cycle) imposes on each
//     structure, vs the shuffle's log2(N) recirculation passes.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "hw/area_model.hpp"
#include "hwpq/binary_heap_pq.hpp"
#include "hwpq/pipelined_heap_pq.hpp"
#include "hwpq/shift_register_pq.hpp"
#include "hwpq/systolic_pq.hpp"
#include "util/ascii_chart.hpp"
#include "util/bitops.hpp"
#include "util/csv.hpp"

int main() {
  using namespace ss;
  bench::banner("Ablation (Section 3)",
                "Shuffle-exchange vs classic hardware priority queues");

  const hw::AreaModel model;
  CsvWriter csv(bench::results_dir() + "ablation_hwpq.csv",
                {"n", "structure", "area_slices", "resort_cycles",
                 "op_cycles_hot"});

  bench::section("area (Virtex-I slices) and window-constrained re-sort "
                 "cost per decision cycle");
  std::printf("%6s %-16s %12s %14s %14s\n", "N", "structure", "slices",
              "resort cyc", "hot op cyc");
  AsciiChart chart("Area vs capacity", "N", "slices", 64, 16);
  Series s_sh{"shuffle", {}, {}, 'S'}, s_bh{"bin-heap", {}, {}, 'b'},
      s_ph{"pipe-heap", {}, {}, 'p'}, s_sy{"systolic", {}, {}, 'y'},
      s_sr{"shift-reg", {}, {}, 'r'};

  for (unsigned n : {4u, 8u, 16u, 32u, 64u}) {
    // ShareStreams fabric at the same capacity (32 is the 5-bit ceiling;
    // larger N shown for the structures' own scaling).
    const unsigned shuffle_slices =
        n <= 32 ? model.area(n, hw::ArchConfig::kBlockArchitecture).total()
                : n * 150 + (n / 2) * 190 + 22 + n * 10;
    const unsigned shuffle_resort = log2_ceil(n);
    std::printf("%6u %-16s %12u %14u %14s\n", n, "shuffle (ours)",
                shuffle_slices, shuffle_resort, "log2(N) passes");
    csv.cell(std::uint64_t{n});
    csv.cell("shuffle");
    csv.cell(std::uint64_t{shuffle_slices});
    csv.cell(std::uint64_t{shuffle_resort});
    csv.cell(std::uint64_t{1});
    csv.endrow();
    s_sh.x.push_back(n);
    s_sh.y.push_back(shuffle_slices);

    std::vector<std::unique_ptr<hwpq::HwPriorityQueue>> structures;
    structures.push_back(std::make_unique<hwpq::BinaryHeapPq>(n));
    structures.push_back(std::make_unique<hwpq::PipelinedHeapPq>(n));
    structures.push_back(std::make_unique<hwpq::SystolicPq>(n));
    structures.push_back(std::make_unique<hwpq::ShiftRegisterPq>(n));
    Series* series[] = {&s_bh, &s_ph, &s_sy, &s_sr};
    for (std::size_t k = 0; k < structures.size(); ++k) {
      auto& pq = *structures[k];
      // Hot-path op cost: fill then measure one push.
      for (unsigned i = 0; i + 1 < n; ++i) {
        pq.push({i, i});
      }
      const auto c0 = pq.cycles();
      pq.push({n, n});
      const auto op = pq.cycles() - c0;
      std::printf("%6u %-16s %12u %14llu %14llu\n", n, pq.name().c_str(),
                  pq.area_slices(n),
                  static_cast<unsigned long long>(pq.resort_cycles(n)),
                  static_cast<unsigned long long>(op));
      csv.cell(std::uint64_t{n});
      csv.cell(pq.name());
      csv.cell(std::uint64_t{pq.area_slices(n)});
      csv.cell(pq.resort_cycles(n));
      csv.cell(op);
      csv.endrow();
      series[k]->x.push_back(n);
      series[k]->y.push_back(pq.area_slices(n));
    }
  }
  chart.add(s_sh);
  chart.add(s_bh);
  chart.add(s_ph);
  chart.add(s_sy);
  chart.add(s_sr);
  std::fputs(chart.render().c_str(), stdout);

  bench::section("the paper's argument, quantified at N = 32");
  hwpq::SystolicPq sys(32);
  hwpq::BinaryHeapPq bin(32);
  const unsigned ours = model.area(32, hw::ArchConfig::kBlockArchitecture).total();
  std::printf("area: shuffle %u vs systolic %u slices (%.1fx) — 'a heap, a "
              "systolic queue or a shift-register chain ... will require "
              "replication of the ShareStreams Decision block in every "
              "element'\n",
              ours, sys.area_slices(32),
              static_cast<double>(sys.area_slices(32)) / ours);
  std::printf("re-sort: shuffle %u passes vs heap %llu cycles — 'priorities "
              "... are updated every decision-cycle.  This will require "
              "resorting the heap'\n",
              log2_ceil(32),
              static_cast<unsigned long long>(bin.resort_cycles(32)));
  std::printf("tree alternative: %u Decision blocks (N-1) vs the shuffle's "
              "%u (N/2) — 'a simple binary tree simply wastes area'\n",
              31u, 16u);
  std::printf("\nCSV: results/ablation_hwpq.csv\n");
  return 0;
}
