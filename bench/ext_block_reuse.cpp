// ext_block_reuse — quantifies Section 5.1's "Evaluation Summary and
// Extension of Results": when can a sorted block be reused across future
// packet-times?
//
//   "For service-tag based fair-queuing disciplines, if the computed
//    finish-time of a new packet is higher than those of the elements in
//    the block, the block can be used for transmission in future
//    packet-times, otherwise the queues will need a re-sort ... if the
//    priority assignment engine assigns monotonically increasing
//    priorities across all streams then block decision can be leveraged."
//
// We drive the BlockReuseChecker with SCFQ finish tags from two priority
// assignment engines — a single global engine (monotone tags by
// construction) and per-stream engines over bursty traffic (tags
// interleave non-monotonically) — and measure the fraction of decision
// cycles whose block survives for reuse.
#include <cstdio>

#include "bench_common.hpp"
#include "core/block_policy.hpp"
#include "sched/wfq.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

struct Result {
  std::uint64_t blocks = 0;
  std::uint64_t reusable_cycles = 0;
  std::uint64_t resorts = 0;
};

// Simulate: every packet-time a block of the 4 smallest finish tags is
// formed; between blocks `arrivals_per_cycle` new packets get tags from
// the chosen engine.  A block is "reused" while every new tag exceeds its
// max.
Result run(bool global_engine, ss::Rng& rng) {
  Result r;
  ss::core::BlockReuseChecker checker;
  double global_vtime = 0;
  double per_stream[4] = {0, 0, 0, 0};
  std::vector<std::uint64_t> window;  // tags of the current block
  for (int cycle = 0; cycle < 20000; ++cycle) {
    // Form a block from 4 fresh tags.
    window.clear();
    for (int i = 0; i < 4; ++i) {
      const auto s = static_cast<unsigned>(rng.below(4));
      double tag;
      if (global_engine) {
        global_vtime += 1.0 + rng.below(3);
        tag = global_vtime;
      } else {
        // Bursty per-stream engines: a stream that idled restarts its
        // clock low relative to others that raced ahead.
        if (rng.chance(0.02)) per_stream[s] *= 0.5;  // idle reset
        per_stream[s] += 1.0 + rng.below(3);
        tag = per_stream[s];
      }
      window.push_back(static_cast<std::uint64_t>(tag * 16));
    }
    checker.new_block(window);
    ++r.blocks;
    // Four future packet-times of new arrivals test the block.
    bool survived = true;
    for (int t = 0; t < 4 && survived; ++t) {
      const auto s = static_cast<unsigned>(rng.below(4));
      double tag;
      if (global_engine) {
        global_vtime += 1.0 + rng.below(3);
        tag = global_vtime;
      } else {
        if (rng.chance(0.02)) per_stream[s] *= 0.5;
        per_stream[s] += 1.0 + rng.below(3);
        tag = per_stream[s];
      }
      survived = checker.on_new_tag(static_cast<std::uint64_t>(tag * 16));
    }
    if (survived) {
      ++r.reusable_cycles;
    } else {
      ++r.resorts;
    }
  }
  return r;
}

}  // namespace

int main() {
  using namespace ss;
  bench::banner("Extension (Section 5.1)",
                "Block reuse under monotone vs non-monotone tag engines");
  CsvWriter csv(bench::results_dir() + "ext_block_reuse.csv",
                {"engine", "blocks", "reusable", "resorts", "reuse_rate"});

  Rng rng(13579);
  const Result mono = run(true, rng);
  const Result burst = run(false, rng);

  bench::section("20000 blocks, 4 future packet-times tested per block");
  auto row = [&](const char* name, const Result& r) {
    const double rate = static_cast<double>(r.reusable_cycles) / r.blocks;
    std::printf("%-28s blocks=%llu reusable=%llu resorts=%llu -> %.1f%% "
                "reuse\n",
                name, static_cast<unsigned long long>(r.blocks),
                static_cast<unsigned long long>(r.reusable_cycles),
                static_cast<unsigned long long>(r.resorts), rate * 100);
    csv.cell(name);
    csv.cell(r.blocks);
    csv.cell(r.reusable_cycles);
    csv.cell(r.resorts);
    csv.cell(rate);
    csv.endrow();
  };
  row("global engine (monotone)", mono);
  row("per-stream engines (bursty)", burst);

  bench::section("reading");
  std::printf("* a single monotone priority-assignment engine makes every "
              "block reusable — the paper's condition holds by "
              "construction;\n");
  std::printf("* independent per-stream clocks with idle resets break "
              "monotonicity and force re-sorts on a large fraction of "
              "blocks — which is why the paper confines block reuse of "
              "fair-queuing tags to the monotone case, and why fair-share "
              "bandwidth allocation uses max-finding instead.\n");
  std::printf("\nCSV: results/ext_block_reuse.csv\n");
  return 0;
}
