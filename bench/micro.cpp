// micro — google-benchmark microbenchmarks of the hot paths: the Decision
// block's combinational ordering, network passes, full chip decision
// cycles (WR and BA across slot counts), SPSC ring ops, the software
// disciplines' per-packet cost, and the DWCS software reference decision.
#include <benchmark/benchmark.h>

#include <memory>

#include "dwcs/reference_scheduler.hpp"
#include "fabric/crossbar.hpp"
#include "hw/scheduler_chip.hpp"
#include "hw/shuffle.hpp"
#include "hw/streaming_unit.hpp"
#include "queueing/spsc_ring.hpp"
#include "sched/drr.hpp"
#include "sched/sfq.hpp"
#include "sched/timing_wheel.hpp"
#include "sched/wfq.hpp"
#include "util/rng.hpp"

namespace {

using namespace ss;

void BM_DecisionBlock(benchmark::State& state) {
  Rng rng(1);
  std::vector<hw::AttrWord> words(256);
  for (auto& w : words) {
    w.deadline = hw::Deadline{rng()};
    w.loss_num = static_cast<hw::Loss>(rng.below(4));
    w.loss_den = static_cast<hw::Loss>(1 + rng.below(4));
    w.arrival = hw::Arrival{rng()};
    w.pending = true;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = hw::decide(words[i & 255], words[(i + 1) & 255],
                              hw::ComparisonMode::kDwcsFull);
    benchmark::DoNotOptimize(r);
    ++i;
  }
}
BENCHMARK(BM_DecisionBlock);

void BM_NetworkPass(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  hw::ShuffleNetwork net(n, hw::SortSchedule::kPerfectShuffle,
                         hw::ComparisonMode::kDwcsFull);
  Rng rng(2);
  std::vector<hw::AttrWord> words(n);
  for (unsigned i = 0; i < n; ++i) {
    words[i].deadline = hw::Deadline{rng()};
    words[i].id = static_cast<hw::SlotId>(i);
    words[i].pending = true;
  }
  for (auto _ : state) {
    net.load(words);
    net.run_all();
    benchmark::DoNotOptimize(net.winner());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkPass)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ChipDecisionCycle(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const bool block = state.range(1) != 0;
  hw::ChipConfig cfg;
  cfg.slots = n;
  cfg.cmp_mode = hw::ComparisonMode::kDwcsFull;
  cfg.block_mode = block;
  hw::SchedulerChip chip(cfg);
  for (unsigned i = 0; i < n; ++i) {
    hw::SlotConfig sc;
    sc.mode = hw::SlotMode::kDwcs;
    sc.period = chip.period_per_decision_cycle();
    sc.loss_num = 1;
    sc.loss_den = 4;
    sc.initial_deadline = hw::Deadline{i + 1};
    chip.load_slot(static_cast<hw::SlotId>(i), sc);
  }
  for (auto _ : state) {
    for (unsigned i = 0; i < n; ++i) {
      chip.push_request(static_cast<hw::SlotId>(i));
    }
    const auto out = chip.run_decision_cycle();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChipDecisionCycle)
    ->Args({4, 0})
    ->Args({32, 0})
    ->Args({4, 1})
    ->Args({32, 1});

void BM_SpscPushPop(benchmark::State& state) {
  queueing::SpscRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0, out = 0;
  for (auto _ : state) {
    ring.try_push(v++);
    ring.try_pop(out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscPushPop);

template <typename D>
void BM_Discipline(benchmark::State& state) {
  D d;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    d.enqueue({static_cast<std::uint32_t>(seq % 64), 1500, seq, seq});
    benchmark::DoNotOptimize(d.dequeue(seq));
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Discipline<sched::Sfq>)->Name("BM_SoftwareSfq");
BENCHMARK(BM_Discipline<sched::Drr>)->Name("BM_SoftwareDrr");
BENCHMARK(BM_Discipline<sched::Wfq>)->Name("BM_SoftwareWfq");

void BM_TimingWheel(benchmark::State& state) {
  sched::TimingWheel tw(256, 1000);
  for (std::uint32_t s = 0; s < 64; ++s) {
    tw.set_relative_deadline(s, 1000 + s * 500);
  }
  std::uint64_t seq = 0;
  for (auto _ : state) {
    tw.enqueue({static_cast<std::uint32_t>(seq % 64), 1500, seq * 100, seq});
    benchmark::DoNotOptimize(tw.dequeue(seq * 100));
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimingWheel);

void BM_StreamingUnitRefillCycle(benchmark::State& state) {
  hw::PciModel pci;
  hw::SramBank bank(1 << 16, Nanos{2000});
  queueing::QueueManager qm(1000);
  qm.add_stream(1 << 16);
  hw::StreamingUnit su(hw::StreamingUnitConfig{}, pci, bank, 1);
  std::uint64_t produced = 0;
  std::uint16_t off;
  for (auto _ : state) {
    queueing::Frame f;
    f.arrival_ns = produced++ * 1000;
    qm.produce(0, f);
    if (su.needs_refill(0)) su.refill(0, qm);
    benchmark::DoNotOptimize(su.pop_arrival(0, off));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamingUnitRefillCycle);

void BM_CrossbarCycle(benchmark::State& state) {
  const auto ports = static_cast<unsigned>(state.range(0));
  fabric::Crossbar xbar(ports, ports, 2, 1 << 12);
  std::uint64_t k = 0;
  fabric::FabricFrame f;
  for (auto _ : state) {
    for (unsigned i = 0; i < ports; ++i) {
      f.output_port = static_cast<std::uint32_t>((i + k) % ports);
      xbar.offer(i, f);
    }
    xbar.cycle();
    fabric::FabricFrame out;
    for (unsigned p = 0; p < ports; ++p) {
      while (xbar.pull(p, out)) {
      }
    }
    ++k;
  }
  state.SetItemsProcessed(state.iterations() * ports);
}
BENCHMARK(BM_CrossbarCycle)->Arg(4)->Arg(16);

void BM_DwcsReferenceDecision(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  dwcs::ReferenceScheduler sched;
  for (unsigned i = 0; i < n; ++i) {
    dwcs::StreamSpec s;
    s.mode = dwcs::StreamMode::kDwcs;
    s.period = 1 + i % 4;
    s.loss_num = 1;
    s.loss_den = 4;
    s.initial_deadline = i + 1;
    sched.add_stream(s);
  }
  std::uint64_t k = 0;
  for (auto _ : state) {
    sched.push_request(static_cast<std::uint32_t>(k % n));
    benchmark::DoNotOptimize(sched.run_decision_cycle());
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DwcsReferenceDecision)->Arg(4)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
