// fig1a_framework — reproduces Figure 1(a): the ShareStreams architectural
// solutions framework ("QoS bounds x scale x scheduling rate").
//
// For a grid of applications (stream count x packet granularity x line
// rate) the framework computes the REQUIRED scheduling rate, picks an
// architectural configuration, reports the ACHIEVABLE rate, and — where
// the requirement cannot be met — the QoS degradation (fraction of
// packet-times missed).  The MPEG row demonstrates the paper's
// granularity argument: large media frames need a far lower scheduling
// rate than minimum-size Ethernet frames.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/framework.hpp"
#include "hw/timing_model.hpp"
#include "queueing/traffic_gen.hpp"
#include "util/csv.hpp"

int main() {
  using namespace ss;
  bench::banner("Figure 1(a)",
                "QoS bounds x scale x scheduling rate: the solution space");

  const core::SolutionFramework fw;
  CsvWriter csv(bench::results_dir() + "fig1a_framework.csv",
                {"streams", "frame_bytes", "line_gbps", "required_rate",
                 "achievable_rate", "config", "slots", "streams_per_slot",
                 "device", "feasible", "degradation"});

  bench::section("solution grid");
  std::printf("%8s %9s %7s | %12s %12s  %-22s %10s\n", "streams", "frame B",
              "Gbps", "required/s", "achievable/s", "configuration",
              "verdict");

  struct Cell {
    unsigned streams;
    std::uint64_t frame;
    double gbps;
    const char* label;
  };
  // MPEG mean frame size at 30 fps for the granularity row.
  queueing::MpegGen::Gop gop;
  const auto mpeg_bytes = static_cast<std::uint64_t>(
      queueing::MpegGen(33'000'000, gop, 1).mean_frame_bytes());
  const std::vector<Cell> grid = {
      {4, 1500, 1.0, "host router"},
      {32, 1500, 1.0, "edge switch port"},
      {32, 64, 1.0, "edge, worst-case frames"},
      {32, 1500, 10.0, "10G line card"},
      {32, 64, 10.0, "10G, worst-case frames"},
      {8, mpeg_bytes, 1.0, "MPEG @30fps granularity"},
      {256, 1500, 1.0, "hundreds of streams"},
      {1000, 1500, 10.0, "10G, 1000 flows"},
  };
  for (const Cell& c : grid) {
    const core::Solution s = fw.solve({c.streams, c.frame, c.gbps});
    char config[64];
    std::snprintf(config, sizeof config, "%s%s, %u slots%s",
                  s.arch == hw::ArchConfig::kBlockArchitecture ? "BA" : "WR",
                  s.block_scheduling ? "+block" : "", s.slots,
                  s.streams_per_slot > 1 ? ", aggregated" : "");
    std::printf("%8u %9llu %7.1f | %12.3e %12.3e  %-22s %10s",
                c.streams, static_cast<unsigned long long>(c.frame), c.gbps,
                s.required_rate, s.achievable_rate, config,
                s.feasible ? "meets" : "DEGRADES");
    if (!s.feasible) std::printf(" (%.0f%% missed)", s.degradation * 100);
    std::printf("   <- %s\n", c.label);
    if (s.streams_per_slot > 1) {
      std::printf("%37s %u streamlets per slot; per-stream QoS becomes "
                  "per-slot aggregate QoS\n", "aggregation:",
                  s.streams_per_slot);
    }
    csv.cell(std::uint64_t{c.streams});
    csv.cell(static_cast<std::uint64_t>(c.frame));
    csv.cell(c.gbps);
    csv.cell(s.required_rate);
    csv.cell(s.achievable_rate);
    csv.cell(config);
    csv.cell(std::uint64_t{s.slots});
    csv.cell(std::uint64_t{s.streams_per_slot});
    csv.cell(s.device);
    csv.cell(static_cast<std::uint64_t>(s.feasible ? 1 : 0));
    csv.cell(s.degradation);
    csv.endrow();
  }

  bench::section("the granularity argument (Section 2 / Figure 1)");
  const double eth_rate = hw::TimingModel::required_rate(64, 1.0);
  const double mpeg_rate = hw::TimingModel::required_rate(mpeg_bytes, 1.0);
  std::printf("64 B Ethernet frames demand %.2e decisions/s; %llu B MPEG "
              "frames demand %.2e — a %.0fx lower scheduling rate for the "
              "same link, which is why granularity sits on Figure 1's "
              "scale axis.\n",
              eth_rate, static_cast<unsigned long long>(mpeg_bytes),
              mpeg_rate, eth_rate / mpeg_rate);
  std::printf("\nCSV: results/fig1a_framework.csv\n");
  return 0;
}
