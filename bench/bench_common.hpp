// bench_common.hpp — shared plumbing for the figure/table benches.
//
// Every bench prints (a) a banner naming the paper artifact it reproduces,
// (b) the regenerated rows/series as text and ASCII charts, (c) the
// paper's reference values where the text states them, and writes the raw
// series as CSV under ./results/ for external re-plotting.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include <sys/resource.h>

namespace ss::bench {

/// Wall-clock seconds since `t0` — benches stamp their artifact headers
/// with total run duration so benchdiff (and humans) can see how much
/// machine time a committed baseline represents.
inline double elapsed_s(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Peak resident set size of this process in kilobytes (ru_maxrss is KB
/// on Linux); 0 when the platform query fails.
inline std::uint64_t peak_rss_kb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss > 0 ? static_cast<std::uint64_t>(ru.ru_maxrss) : 0;
}

/// The shared `"env"` header object for BENCH_*.json artifacts: how long
/// the sweep ran and how much memory it peaked at.  Optional for readers
/// (older committed artifacts lack it).
inline std::string env_json(double duration_s) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "{\"duration_s\": %.3f, \"peak_rss_kb\": %llu}", duration_s,
                static_cast<unsigned long long>(peak_rss_kb()));
  return buf;
}

inline std::string results_dir() {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  return "results/";
}

inline void banner(const char* artifact, const char* title) {
  std::printf("\n");
  std::printf("=====================================================================\n");
  std::printf("  ShareStreams reproduction — %s\n", artifact);
  std::printf("  %s\n", title);
  std::printf("=====================================================================\n");
}

inline void section(const char* name) {
  std::printf("\n--- %s ---\n", name);
}

}  // namespace ss::bench
