// bench_common.hpp — shared plumbing for the figure/table benches.
//
// Every bench prints (a) a banner naming the paper artifact it reproduces,
// (b) the regenerated rows/series as text and ASCII charts, (c) the
// paper's reference values where the text states them, and writes the raw
// series as CSV under ./results/ for external re-plotting.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

namespace ss::bench {

inline std::string results_dir() {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  return "results/";
}

inline void banner(const char* artifact, const char* title) {
  std::printf("\n");
  std::printf("=====================================================================\n");
  std::printf("  ShareStreams reproduction — %s\n", artifact);
  std::printf("  %s\n", title);
  std::printf("=====================================================================\n");
}

inline void section(const char* name) {
  std::printf("\n--- %s ---\n", name);
}

}  // namespace ss::bench
