// throughput_baseline — reproducible perf baseline for the block-batched
// transmission pipeline.
//
// Sweeps {WR winner-only, block batch_depth 1/4/0(=whole block)} x
// {4, 16, 32 streams} over an all-frames-backlogged fair-share workload
// (every frame queued at t=0, the Section-5.2 measurement discipline) and
// emits one machine-readable JSON artifact, BENCH_throughput.json:
// packets/sec excluding and including the modeled PCI exchange, hardware
// cycles and host nanoseconds per decision, frames per decision, and
// worst-stream p50/p99 queueing delay.  The committed copy at the repo
// root is the baseline CI's bench-smoke job regenerates (with --quick)
// and schema-checks; regressions show up as a diff, not as a hunch.
//
//   throughput_baseline                      # full sweep, ~20k frames/stream
//   throughput_baseline --quick              # CI-sized sweep (seconds)
//   throughput_baseline --frames 5000        # explicit depth
//   throughput_baseline --out path.json      # artifact location
//
// The point the sweep exists to show: with enough contending streams the
// batched drain retires more packets per decision cycle than winner-only
// draining, because the per-decision overhead (sort, PCI readback,
// bookkeeping) is amortized over up to batch_depth grants.
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/endsystem.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/watchdog.hpp"

namespace {

struct Row {
  const char* mode;     // "wr" | "block"
  unsigned batch_depth; // 1 for wr (one grant per decision by construction)
  unsigned streams;
  std::uint64_t frames = 0;
  std::uint64_t decisions = 0;
  std::uint64_t committed = 0;  // non-idle decisions (cost denominator)
  double pps_excl_pci = 0;
  double pps_incl_pci = 0;
  double hw_cycles_per_decision = 0;
  double host_ns_per_decision = 0;
  double host_ns_per_frame = 0;
  double frames_per_decision = 0;
  double p50_delay_us = 0;  // worst stream
  double p99_delay_us = 0;  // worst stream
};

Row run_point(const char* mode, unsigned batch_depth, unsigned streams,
              std::uint64_t frames_per_stream,
              ss::telemetry::MetricsRegistry* metrics = nullptr,
              ss::telemetry::FrameTrace* frame_trace = nullptr,
              ss::telemetry::AuditSession* audit = nullptr,
              ss::telemetry::Profiler* profiler = nullptr,
              ss::hw::simd::KernelChoice kernel =
                  ss::hw::simd::KernelChoice::kAuto) {
  using namespace ss;
  Row row{mode, batch_depth, streams};

  core::EndsystemConfig cfg;
  cfg.chip.slots = streams;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.chip.schedule = hw::SortSchedule::kBitonic;  // same datapath for all
  cfg.chip.block_mode = std::strcmp(mode, "block") == 0;
  cfg.chip.batch_depth = cfg.chip.block_mode ? batch_depth : 0;
  cfg.chip.kernel = kernel;
  cfg.pci_batch = 32;
  // Streaming log-binned delay histograms: percentile estimates at O(1)
  // memory, instead of buffering every per-frame delay (the old
  // keep_series + PercentileSampler path scaled with run length).
  cfg.keep_series = false;
  cfg.delay_histogram = true;
  cfg.metrics = metrics;
  cfg.frame_trace = frame_trace;
  cfg.audit = audit;
  cfg.profiler = profiler;
  core::Endsystem es(cfg);

  for (unsigned i = 0; i < streams; ++i) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = 1.0 + static_cast<double>(i % 4);
    r.droppable = false;
    // Interval 0: the whole load is backlogged at t=0, so every decision
    // cycle faces the full contention the sweep is about.
    es.add_stream(r, std::make_unique<queueing::CbrGen>(0), 1500);
  }

  const std::uint64_t before_hw = es.chip().hw_cycles();
  const core::EndsystemReport rep = es.run(frames_per_stream);
  const std::uint64_t hw_cycles = es.chip().hw_cycles() - before_hw;

  row.frames = rep.frames;
  row.decisions = rep.decision_cycles;
  row.committed = rep.committed_decisions;
  row.pps_excl_pci = rep.pps_excl_pci;
  row.pps_incl_pci = rep.pps_incl_pci;
  // Per-decision costs average over COMMITTED (non-idle) decision cycles:
  // the raw decision_cycles count includes idle vtime ticks, which run
  // none of the decision datapath and used to dilute the depth-1 rows
  // (the old 729ns-at-depth-1 vs 1347ns-at-depth-4 "gap" was mostly this
  // denominator, not the work).  host_ns_per_frame is the cross-depth
  // comparable number: total host time over frames retired.
  if (rep.committed_decisions > 0) {
    row.hw_cycles_per_decision =
        static_cast<double>(hw_cycles) /
        static_cast<double>(rep.committed_decisions);
    row.host_ns_per_decision = rep.host_seconds * 1e9 /
                               static_cast<double>(rep.committed_decisions);
    row.frames_per_decision = static_cast<double>(rep.frames) /
                              static_cast<double>(rep.committed_decisions);
  }
  if (rep.frames > 0) {
    row.host_ns_per_frame =
        rep.host_seconds * 1e9 / static_cast<double>(rep.frames);
  }
  for (unsigned i = 0; i < streams; ++i) {
    row.p50_delay_us = std::max(row.p50_delay_us,
                                es.monitor().delay_percentile_est_us(i, 50.0));
    row.p99_delay_us = std::max(row.p99_delay_us,
                                es.monitor().delay_percentile_est_us(i, 99.0));
  }
  return row;
}

struct OverheadRow {
  unsigned streams = 16;
  unsigned batch_depth = 4;
  double pps_off = 0;       ///< telemetry detached (the default hot path)
  double pps_on = 0;        ///< metrics registry attached, recording live
  double overhead_pct = 0;  ///< (off - on) / off, percent
};

// Noise discipline for the overhead contracts: the box this runs on is
// shared, so a single off/on pair conflates scheduling noise (observed
// swings of +-20% between identical runs) with instrumentation cost.
// Each contract interleaves `reps` off/on pairs — both legs sample the
// same background-load regime — and keeps the best of each leg: the max
// estimates unthrottled capability, which is what an overhead ratio is
// about.
template <typename OffFn, typename OnFn>
void measure_overhead(OverheadRow& r, unsigned reps, OffFn&& off, OnFn&& on) {
  for (unsigned i = 0; i < reps; ++i) {
    r.pps_off = std::max(r.pps_off, off().pps_excl_pci);
    r.pps_on = std::max(r.pps_on, on().pps_excl_pci);
  }
  r.overhead_pct =
      r.pps_off > 0 ? (r.pps_off - r.pps_on) / r.pps_off * 100.0 : 0.0;
}

void print_overhead_entry(std::FILE* f, const char* key, const OverheadRow& r,
                          bool last) {
  std::fprintf(f,
               "  \"%s\": {\"mode\": \"block\", "
               "\"batch_depth\": %u, \"streams\": %u, \"pps_off\": %.1f, "
               "\"pps_on\": %.1f, \"overhead_pct\": %.2f}%s\n",
               key, r.batch_depth, r.streams, r.pps_off, r.pps_on,
               r.overhead_pct, last ? "" : ",");
}

// SIMD-vs-scalar contract at the headline point (32 streams, block
// depth 1): both legs interleave inside one process, so they sample the
// same background-load regime — the speedup ratio is meaningful even when
// absolute pps between whole runs is not (shared-box noise).
struct SpeedupRow {
  const char* kernel = "";  // resolved SIMD kernel name
  double pps_scalar = 0;    // kReference (per-pair oracle) leg
  double pps_simd = 0;      // default-dispatch leg
  double speedup = 0;
};

void write_json(const std::string& path, const std::vector<Row>& rows,
                const SpeedupRow& su, const OverheadRow& oh,
                const OverheadRow& ah, const OverheadRow& sh,
                const OverheadRow& ph, std::uint64_t frames_per_stream,
                bool quick, double duration_s) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"throughput_baseline\",\n");
  std::fprintf(f, "  \"version\": 2,\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"env\": %s,\n", ss::bench::env_json(duration_s).c_str());
  std::fprintf(f, "  \"frames_per_stream\": %llu,\n",
               static_cast<unsigned long long>(frames_per_stream));
  std::fprintf(f, "  \"link_gbps\": 1.0,\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"batch_depth\": %u, \"streams\": %u, "
        "\"frames\": %llu, \"decisions\": %llu, "
        "\"committed_decisions\": %llu, "
        "\"pps_excl_pci\": %.1f, \"pps_incl_pci\": %.1f, "
        "\"hw_cycles_per_decision\": %.2f, \"host_ns_per_decision\": %.1f, "
        "\"host_ns_per_frame\": %.1f, \"frames_per_decision\": %.3f, "
        "\"p50_delay_us\": %.2f, \"p99_delay_us\": %.2f}%s\n",
        r.mode, r.batch_depth, r.streams,
        static_cast<unsigned long long>(r.frames),
        static_cast<unsigned long long>(r.decisions),
        static_cast<unsigned long long>(r.committed), r.pps_excl_pci,
        r.pps_incl_pci, r.hw_cycles_per_decision, r.host_ns_per_decision,
        r.host_ns_per_frame, r.frames_per_decision, r.p50_delay_us,
        r.p99_delay_us, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"simd_speedup\": {\"mode\": \"block\", \"batch_depth\": 1, "
               "\"streams\": 32, \"kernel\": \"%s\", "
               "\"pps_scalar\": %.1f, \"pps_simd\": %.1f, "
               "\"speedup\": %.2f},\n",
               su.kernel, su.pps_scalar, su.pps_simd, su.speedup);
  print_overhead_entry(f, "telemetry_overhead", oh, false);
  // audit_overhead is the production observability config: audit sampled
  // 1-in-64, metrics registry bound, anomaly watchdog polling live.
  print_overhead_entry(f, "audit_overhead", ah, false);
  // audit_sampled_overhead isolates the sampled audit session itself.
  print_overhead_entry(f, "audit_sampled_overhead", sh, false);
  print_overhead_entry(f, "profiler_overhead", ph, true);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ss;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t frames_per_stream = 20000;
  std::string out = "BENCH_throughput.json";
  std::string metrics_out, trace_out, profile_out, timeseries_out;
  bool quick = false;
  unsigned reps_override = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
      frames_per_stream = 2000;
    } else if (a == "--frames" && i + 1 < argc) {
      frames_per_stream = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--reps" && i + 1 < argc) {
      reps_override =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (a == "--metrics-json" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (a == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (a == "--profile-out" && i + 1 < argc) {
      profile_out = argv[++i];
    } else if (a == "--timeseries-out" && i + 1 < argc) {
      timeseries_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: throughput_baseline [--quick] [--frames N] "
                   "[--reps N] [--out FILE] [--metrics-json FILE] "
                   "[--trace-out FILE] [--profile-out FILE] "
                   "[--timeseries-out FILE]\n");
      return 2;
    }
  }

  bench::banner("perf baseline",
                "Block-batched transmission pipeline: WR vs batched block "
                "draining");

  struct Point {
    const char* mode;
    unsigned depth;
  };
  const Point points[] = {{"wr", 1}, {"block", 1}, {"block", 4}, {"block", 0}};
  const unsigned stream_counts[] = {4, 16, 32};

  std::vector<Row> rows;
  bench::section("sweep (pps excluding PCI)");
  std::printf("%-8s %-6s %8s %14s %14s %10s %10s\n", "mode", "depth",
              "streams", "pps_excl", "pps_incl", "frm/dec", "p99_us");
  for (const unsigned n : stream_counts) {
    for (const Point& p : points) {
      const Row r = run_point(p.mode, p.depth, n, frames_per_stream);
      std::printf("%-8s %-6u %8u %14.0f %14.0f %10.3f %10.1f\n", r.mode,
                  r.batch_depth, r.streams, r.pps_excl_pci, r.pps_incl_pci,
                  r.frames_per_decision, r.p99_delay_us);
      rows.push_back(r);
    }
  }

  // `--reps` widens the interleaved best-of-N window when the box is
  // noisy enough that 5 reps still let one lucky leg skew a row.
  const unsigned reps = reps_override ? reps_override : (quick ? 2u : 5u);

  // SIMD-vs-scalar speedup at the headline point, both legs interleaved
  // best-of-N so they share the same noise regime (see SpeedupRow).
  bench::section("simd speedup (block depth 1, 32 streams)");
  SpeedupRow su;
  su.kernel = hw::simd::kernel_name(hw::simd::default_kernel());
  for (unsigned i = 0; i < reps; ++i) {
    su.pps_scalar = std::max(
        su.pps_scalar,
        run_point("block", 1, 32, frames_per_stream, nullptr, nullptr,
                  nullptr, nullptr, hw::simd::KernelChoice::kReference)
            .pps_excl_pci);
    su.pps_simd = std::max(
        su.pps_simd,
        run_point("block", 1, 32, frames_per_stream).pps_excl_pci);
  }
  su.speedup = su.pps_scalar > 0 ? su.pps_simd / su.pps_scalar : 0.0;
  std::printf("kernel=%s  pps scalar=%.0f  simd=%.0f  speedup=%.2fx  "
              "(best of %u)\n",
              su.kernel, su.pps_scalar, su.pps_simd, su.speedup, reps);

  // Telemetry overhead contract: the same point, telemetry detached vs a
  // live metrics registry (+ frame trace when exporting).  The detached
  // number is what the rows above report; the attached number shows what a
  // monitored deployment pays.
  bench::section("telemetry overhead (block depth 4, 16 streams)");
  OverheadRow oh;
  {
    telemetry::MetricsRegistry registry;
    telemetry::FrameTrace frame_trace;
    // --timeseries-out attaches the interval sampler to the "on" leg's
    // registry, so the artifact shows metric rates evolving across the
    // interleaved overhead reps.
    telemetry::TimeSeries timeseries(registry);
    if (!timeseries_out.empty()) timeseries.start();
    measure_overhead(
        oh, reps,
        [&] {
          return run_point("block", oh.batch_depth, oh.streams,
                           frames_per_stream);
        },
        [&] {
          return run_point("block", oh.batch_depth, oh.streams,
                           frames_per_stream, &registry,
                           trace_out.empty() ? nullptr : &frame_trace);
        });
    if (!timeseries_out.empty()) {
      timeseries.stop();
      if (!timeseries.write_json(timeseries_out)) {
        std::fprintf(stderr, "cannot open %s\n", timeseries_out.c_str());
        return 2;
      }
      std::printf("time-series -> %s (%zu intervals)\n",
                  timeseries_out.c_str(), timeseries.size());
    }
    std::printf("pps off=%.0f  on=%.0f  overhead=%.2f%%  (best of %u)\n",
                oh.pps_off, oh.pps_on, oh.overhead_pct, reps);
    if (!metrics_out.empty()) {
      std::FILE* mf = std::fopen(metrics_out.c_str(), "w");
      if (!mf) {
        std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
        return 2;
      }
      const std::string json = registry.to_json();
      std::fwrite(json.data(), 1, json.size(), mf);
      std::fputc('\n', mf);
      std::fclose(mf);
    }
    if (!trace_out.empty() && !frame_trace.write_chrome_json(trace_out)) {
      std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
      return 2;
    }
  }

  // Audit overhead, production configuration: the decision-audit session
  // sampling rule provenance 1-in-64, its exact counters bound into a
  // registry, and the anomaly watchdog polling that registry live.  The
  // row isolates the audit plane: the cost of the EndsystemMetrics
  // instrumentation is the telemetry_overhead row above, so it is not
  // attached here (a deployment running both pays roughly the sum).
  bench::section(
      "audit overhead, production config "
      "(sampled 1-in-64 + registry + watchdog; block depth 4, 16 streams)");
  OverheadRow ah;
  {
    telemetry::MetricsRegistry registry;
    telemetry::AuditSession audit(ah.streams);
    audit.set_sampling(64);
    audit.audit().bind_registry(registry);
    telemetry::Watchdog watchdog(registry, &audit);
    watchdog.start();
    measure_overhead(
        ah, reps,
        [&] {
          return run_point("block", ah.batch_depth, ah.streams,
                           frames_per_stream);
        },
        [&] {
          return run_point("block", ah.batch_depth, ah.streams,
                           frames_per_stream, nullptr, nullptr, &audit);
        });
    watchdog.stop();
    std::printf("pps off=%.0f  on=%.0f  overhead=%.2f%%  (best of %u; "
                "comparisons=%llu sampled=%llu recorded=%llu "
                "watchdog_polls=%llu)\n",
                ah.pps_off, ah.pps_on, ah.overhead_pct, reps,
                static_cast<unsigned long long>(audit.audit().comparisons()),
                static_cast<unsigned long long>(
                    audit.audit().comparisons_sampled()),
                static_cast<unsigned long long>(audit.recorder().recorded()),
                static_cast<unsigned long long>(watchdog.polls()));
  }

  // The sampled audit session alone (no registry, no watchdog): what the
  // 1-in-64 DecisionSampler costs over a fully detached run.
  bench::section("audit overhead, sampling only (1-in-64)");
  OverheadRow sh;
  {
    telemetry::AuditSession audit(sh.streams);
    audit.set_sampling(64);
    measure_overhead(
        sh, reps,
        [&] {
          return run_point("block", sh.batch_depth, sh.streams,
                           frames_per_stream);
        },
        [&] {
          return run_point("block", sh.batch_depth, sh.streams,
                           frames_per_stream, nullptr, nullptr, &audit);
        });
    std::printf("pps off=%.0f  on=%.0f  overhead=%.2f%%  (best of %u)\n",
                sh.pps_off, sh.pps_on, sh.overhead_pct, reps);
  }

  // Hot-path self-profiler: per-stage scoped timers (rdtsc where
  // available) on the decision, shuffle, PCI, queue-drain and transmit
  // paths.
  bench::section("profiler overhead");
  OverheadRow ph;
  {
    telemetry::Profiler profiler;
    measure_overhead(
        ph, reps,
        [&] {
          return run_point("block", ph.batch_depth, ph.streams,
                           frames_per_stream);
        },
        [&] {
          return run_point("block", ph.batch_depth, ph.streams,
                           frames_per_stream, nullptr, nullptr, nullptr,
                           &profiler);
        });
    std::printf("pps off=%.0f  on=%.0f  overhead=%.2f%%  (best of %u; "
                "%s clock)\n",
                ph.pps_off, ph.pps_on, ph.overhead_pct, reps,
                telemetry::Profiler::clock_name());
    if (!profile_out.empty()) {
      if (!profiler.write_json(profile_out)) {
        std::fprintf(stderr, "cannot open %s\n", profile_out.c_str());
        return 2;
      }
      std::printf("stage profile -> %s\n", profile_out.c_str());
    }
  }

  write_json(out, rows, su, oh, ah, sh, ph, frames_per_stream, quick,
             bench::elapsed_s(t0));

  // The claim the artifact backs: at >=16 streams, batched draining beats
  // winner-only (batch_depth=1) packet rates.
  bench::section("verdicts");
  bool all_ok = true;
  for (const unsigned n : {16u, 32u}) {
    double depth1 = 0, batched = 0;
    for (const Row& r : rows) {
      if (r.streams != n || std::strcmp(r.mode, "block") != 0) continue;
      if (r.batch_depth == 1) depth1 = r.pps_excl_pci;
      else batched = std::max(batched, r.pps_excl_pci);
    }
    const bool ok = batched > depth1;
    all_ok = all_ok && ok;
    std::printf("batched > winner-only at %2u streams:  %s (%.0f vs %.0f "
                "pps)\n",
                n, ok ? "REPRODUCED" : "DIVERGED", batched, depth1);
  }
  std::printf("\nJSON: %s\n", out.c_str());
  return all_ok ? 0 : 1;
}
