// throughput_baseline — reproducible perf baseline for the block-batched
// transmission pipeline.
//
// Sweeps {WR winner-only, block batch_depth 1/4/0(=whole block)} x
// {4, 16, 32 streams} over an all-frames-backlogged fair-share workload
// (every frame queued at t=0, the Section-5.2 measurement discipline) and
// emits one machine-readable JSON artifact, BENCH_throughput.json:
// packets/sec excluding and including the modeled PCI exchange, hardware
// cycles and host nanoseconds per decision, frames per decision, and
// worst-stream p50/p99 queueing delay.  The committed copy at the repo
// root is the baseline CI's bench-smoke job regenerates (with --quick)
// and schema-checks; regressions show up as a diff, not as a hunch.
//
//   throughput_baseline                      # full sweep, ~20k frames/stream
//   throughput_baseline --quick              # CI-sized sweep (seconds)
//   throughput_baseline --frames 5000        # explicit depth
//   throughput_baseline --out path.json      # artifact location
//
// The point the sweep exists to show: with enough contending streams the
// batched drain retires more packets per decision cycle than winner-only
// draining, because the per-decision overhead (sort, PCI readback,
// bookkeeping) is amortized over up to batch_depth grants.
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/endsystem.hpp"

namespace {

struct Row {
  const char* mode;     // "wr" | "block"
  unsigned batch_depth; // 1 for wr (one grant per decision by construction)
  unsigned streams;
  std::uint64_t frames = 0;
  std::uint64_t decisions = 0;
  double pps_excl_pci = 0;
  double pps_incl_pci = 0;
  double hw_cycles_per_decision = 0;
  double host_ns_per_decision = 0;
  double frames_per_decision = 0;
  double p50_delay_us = 0;  // worst stream
  double p99_delay_us = 0;  // worst stream
};

Row run_point(const char* mode, unsigned batch_depth, unsigned streams,
              std::uint64_t frames_per_stream) {
  using namespace ss;
  Row row{mode, batch_depth, streams};

  core::EndsystemConfig cfg;
  cfg.chip.slots = streams;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.chip.schedule = hw::SortSchedule::kBitonic;  // same datapath for all
  cfg.chip.block_mode = std::strcmp(mode, "block") == 0;
  cfg.chip.batch_depth = cfg.chip.block_mode ? batch_depth : 0;
  cfg.pci_batch = 32;
  cfg.keep_series = true;  // delay percentiles need the per-frame series
  core::Endsystem es(cfg);

  for (unsigned i = 0; i < streams; ++i) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = 1.0 + static_cast<double>(i % 4);
    r.droppable = false;
    // Interval 0: the whole load is backlogged at t=0, so every decision
    // cycle faces the full contention the sweep is about.
    es.add_stream(r, std::make_unique<queueing::CbrGen>(0), 1500);
  }

  const std::uint64_t before_hw = es.chip().hw_cycles();
  const core::EndsystemReport rep = es.run(frames_per_stream);
  const std::uint64_t hw_cycles = es.chip().hw_cycles() - before_hw;

  row.frames = rep.frames;
  row.decisions = rep.decision_cycles;
  row.pps_excl_pci = rep.pps_excl_pci;
  row.pps_incl_pci = rep.pps_incl_pci;
  if (rep.decision_cycles > 0) {
    row.hw_cycles_per_decision =
        static_cast<double>(hw_cycles) /
        static_cast<double>(rep.decision_cycles);
    row.host_ns_per_decision = rep.host_seconds * 1e9 /
                               static_cast<double>(rep.decision_cycles);
    row.frames_per_decision = static_cast<double>(rep.frames) /
                              static_cast<double>(rep.decision_cycles);
  }
  for (unsigned i = 0; i < streams; ++i) {
    row.p50_delay_us =
        std::max(row.p50_delay_us, es.monitor().delay_percentile_us(i, 50.0));
    row.p99_delay_us =
        std::max(row.p99_delay_us, es.monitor().delay_percentile_us(i, 99.0));
  }
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                std::uint64_t frames_per_stream, bool quick) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"throughput_baseline\",\n");
  std::fprintf(f, "  \"version\": 1,\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"frames_per_stream\": %llu,\n",
               static_cast<unsigned long long>(frames_per_stream));
  std::fprintf(f, "  \"link_gbps\": 1.0,\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"batch_depth\": %u, \"streams\": %u, "
        "\"frames\": %llu, \"decisions\": %llu, "
        "\"pps_excl_pci\": %.1f, \"pps_incl_pci\": %.1f, "
        "\"hw_cycles_per_decision\": %.2f, \"host_ns_per_decision\": %.1f, "
        "\"frames_per_decision\": %.3f, "
        "\"p50_delay_us\": %.2f, \"p99_delay_us\": %.2f}%s\n",
        r.mode, r.batch_depth, r.streams,
        static_cast<unsigned long long>(r.frames),
        static_cast<unsigned long long>(r.decisions), r.pps_excl_pci,
        r.pps_incl_pci, r.hw_cycles_per_decision, r.host_ns_per_decision,
        r.frames_per_decision, r.p50_delay_us, r.p99_delay_us,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ss;
  std::uint64_t frames_per_stream = 20000;
  std::string out = "BENCH_throughput.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
      frames_per_stream = 2000;
    } else if (a == "--frames" && i + 1 < argc) {
      frames_per_stream = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: throughput_baseline [--quick] [--frames N] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  bench::banner("perf baseline",
                "Block-batched transmission pipeline: WR vs batched block "
                "draining");

  struct Point {
    const char* mode;
    unsigned depth;
  };
  const Point points[] = {{"wr", 1}, {"block", 1}, {"block", 4}, {"block", 0}};
  const unsigned stream_counts[] = {4, 16, 32};

  std::vector<Row> rows;
  bench::section("sweep (pps excluding PCI)");
  std::printf("%-8s %-6s %8s %14s %14s %10s %10s\n", "mode", "depth",
              "streams", "pps_excl", "pps_incl", "frm/dec", "p99_us");
  for (const unsigned n : stream_counts) {
    for (const Point& p : points) {
      const Row r = run_point(p.mode, p.depth, n, frames_per_stream);
      std::printf("%-8s %-6u %8u %14.0f %14.0f %10.3f %10.1f\n", r.mode,
                  r.batch_depth, r.streams, r.pps_excl_pci, r.pps_incl_pci,
                  r.frames_per_decision, r.p99_delay_us);
      rows.push_back(r);
    }
  }

  write_json(out, rows, frames_per_stream, quick);

  // The claim the artifact backs: at >=16 streams, batched draining beats
  // winner-only (batch_depth=1) packet rates.
  bench::section("verdicts");
  bool all_ok = true;
  for (const unsigned n : {16u, 32u}) {
    double depth1 = 0, batched = 0;
    for (const Row& r : rows) {
      if (r.streams != n || std::strcmp(r.mode, "block") != 0) continue;
      if (r.batch_depth == 1) depth1 = r.pps_excl_pci;
      else batched = std::max(batched, r.pps_excl_pci);
    }
    const bool ok = batched > depth1;
    all_ok = all_ok && ok;
    std::printf("batched > winner-only at %2u streams:  %s (%.0f vs %.0f "
                "pps)\n",
                n, ok ? "REPRODUCED" : "DIVERGED", batched, depth1);
  }
  std::printf("\nJSON: %s\n", out.c_str());
  return all_ok ? 0 : 1;
}
