// table3_block_vs_maxfind — reproduces Table 3: "Comparing Block Decisions
// and Max-finding".
//
// The paper's workload: four streams, one per stream-slot, successive
// initial deadlines one time unit apart, each stream requested every
// decision cycle (T_i = 1), ShareStreams-DWCS in EDF mode, 64000 frames.
// Three configurations run at full paper scale on the cycle-level chip:
//   * WR max-finding (one winner per decision cycle);
//   * BA block scheduling, max-first circulation/emission;
//   * BA block scheduling, min-first.
// Reported per stream: missed deadlines, winner decision cycles, plus the
// paper's reference values.  Miss-counter semantics are DESIGN.md §2's
// documented interpretation (once per decision cycle per slot whose
// head-of-line deadline has expired; a grant at-or-after the deadline is
// late).
#include <cstdio>

#include "bench_common.hpp"
#include "hw/scheduler_chip.hpp"
#include "util/csv.hpp"

namespace {

struct RunResult {
  std::uint64_t missed[4];
  std::uint64_t winner_cycles[4];
  std::uint64_t late[4];
  std::uint64_t decision_cycles;
  std::uint64_t frames;
};

RunResult run(bool block, bool min_first, std::uint64_t frames_per_stream) {
  using namespace ss::hw;
  ChipConfig cfg;
  cfg.slots = 4;
  cfg.cmp_mode = ComparisonMode::kTagOnly;  // EDF mode
  cfg.block_mode = block;
  cfg.min_first = min_first;
  cfg.schedule = SortSchedule::kPerfectShuffle;  // the paper's network
  SchedulerChip chip(cfg);
  const std::uint16_t period = chip.period_per_decision_cycle();
  for (unsigned i = 0; i < 4; ++i) {
    SlotConfig sc;
    sc.mode = SlotMode::kEdf;
    sc.period = period;       // requested every decision cycle
    sc.droppable = false;     // late heads wait; misses accrue per cycle
    sc.initial_deadline = Deadline{i + 1};  // one time unit apart
    chip.load_slot(static_cast<SlotId>(i), sc);
  }
  const std::uint64_t total = 4 * frames_per_stream;
  std::uint64_t granted = 0, pushed = 0;
  while (granted < total) {
    if (pushed < total) {
      for (unsigned i = 0; i < 4; ++i) {
        chip.push_request(static_cast<SlotId>(i));
      }
      pushed += 4;
    }
    granted += chip.run_decision_cycle().grants.size();
  }
  RunResult r{};
  for (unsigned i = 0; i < 4; ++i) {
    const auto& c = chip.slot(static_cast<SlotId>(i)).counters();
    r.missed[i] = c.missed_deadlines;
    r.winner_cycles[i] = c.winner_cycles;
    r.late[i] = c.late_transmissions;
  }
  r.decision_cycles = chip.decision_cycles();
  r.frames = granted;
  return r;
}

}  // namespace

int main() {
  using ss::CsvWriter;
  ss::bench::banner("Table 3", "Block decisions vs max-finding (4 streams, "
                               "EDF mode, deadlines 1 apart, T_i = 1)");

  // Primary run: 4000 frames per stream (16000 total), one quarter of the
  // paper's 64000-frame experiment.  The quarter scale keeps the
  // non-droppable max-finding backlog's head deadlines within half the
  // 16-bit serial space for the whole run; totals scale linearly (x4) to
  // the paper's.  The full-scale run below demonstrates WHY: with 16-bit
  // deadline registers (Figure 4's field widths), a backlog deeper than
  // 32768 packet-times wraps the comparator and the miss counters
  // saturate — an artifact a real Virtex-I implementation would share.
  const std::uint64_t kFrames = 4000;
  const RunResult wr = run(false, false, kFrames);
  const RunResult maxf = run(true, false, kFrames);
  const RunResult minf = run(true, true, kFrames);

  CsvWriter csv(ss::bench::results_dir() + "table3.csv",
                {"stream", "config", "missed_deadlines", "winner_cycles",
                 "late_transmissions", "decision_cycles_total"});
  auto emit = [&](const char* name, const RunResult& r) {
    for (unsigned i = 0; i < 4; ++i) {
      csv.cell(std::uint64_t{i + 1});
      csv.cell(name);
      csv.cell(r.missed[i]);
      csv.cell(r.winner_cycles[i]);
      csv.cell(r.late[i]);
      csv.cell(r.decision_cycles);
      csv.endrow();
    }
  };
  emit("max-finding", wr);
  emit("block-max-first", maxf);
  emit("block-min-first", minf);

  ss::bench::section(
      "measured (this reproduction, 16000 frames = paper/4; multiply "
      "totals by 4 to compare)");
  std::printf("%-10s | %-26s | %-26s | %-26s\n", "", "Max-finding (WR)",
              "Block max-first", "Block min-first");
  std::printf("%-10s | %12s %13s | %12s %13s | %12s %13s\n", "stream",
              "missed", "winner cyc", "missed", "winner cyc", "missed",
              "winner cyc");
  std::uint64_t t_wr = 0, t_maxf = 0, t_minf = 0;
  for (unsigned i = 0; i < 4; ++i) {
    std::printf("Stream %u   | %12llu %13llu | %12llu %13llu | %12llu %13llu\n",
                i + 1,
                static_cast<unsigned long long>(wr.missed[i]),
                static_cast<unsigned long long>(wr.winner_cycles[i]),
                static_cast<unsigned long long>(maxf.missed[i]),
                static_cast<unsigned long long>(maxf.winner_cycles[i]),
                static_cast<unsigned long long>(minf.missed[i]),
                static_cast<unsigned long long>(minf.winner_cycles[i]));
    t_wr += wr.missed[i];
    t_maxf += maxf.missed[i];
    t_minf += minf.missed[i];
  }
  std::printf("%-10s | %12llu %13llu | %12llu %13llu | %12llu %13llu\n",
              "Total", static_cast<unsigned long long>(t_wr),
              static_cast<unsigned long long>(wr.decision_cycles),
              static_cast<unsigned long long>(t_maxf),
              static_cast<unsigned long long>(maxf.decision_cycles),
              static_cast<unsigned long long>(t_minf),
              static_cast<unsigned long long>(minf.decision_cycles));

  ss::bench::section("paper's Table 3 (reference)");
  std::printf("Max-finding missed: 63986/63987/63988/63989 (total 255950), "
              "64000 decision cycles\n");
  std::printf("Block max-first missed: 0/0/0/0 (total 0), 16000 decision "
              "cycles (4000 winner cycles per stream)\n");
  std::printf("Block min-first missed: 27839/27214/22621/29311 (total "
              "106985)\n");

  ss::bench::section("shape verdicts");
  std::printf("max-finding ~1 miss/stream/cycle:        %s (%.3f per "
              "stream-cycle; paper 0.9998)\n",
              t_wr > wr.decision_cycles * 39 / 10 ? "REPRODUCED" : "DIVERGED",
              static_cast<double>(t_wr) / (4.0 * wr.decision_cycles));
  std::printf("block max-first meets every deadline:    %s (%llu misses)\n",
              t_maxf == 0 ? "REPRODUCED" : "DIVERGED",
              static_cast<unsigned long long>(t_maxf));
  std::printf("block needs 4x fewer decision cycles:    %s (%llu vs %llu)\n",
              maxf.decision_cycles * 4 == wr.decision_cycles ? "REPRODUCED"
                                                             : "DIVERGED",
              static_cast<unsigned long long>(maxf.decision_cycles),
              static_cast<unsigned long long>(wr.decision_cycles));
  std::printf("min-first misses substantially (0 < min-first < "
              "max-finding): %s\n",
              (t_minf > 0 && t_minf < t_wr) ? "REPRODUCED" : "DIVERGED");
  std::printf("scaled x4 to paper scale: max-finding total %llu (paper "
              "255950), block max-first 0 (paper 0), min-first %llu (paper "
              "106985)\n",
              static_cast<unsigned long long>(4 * t_wr),
              static_cast<unsigned long long>(4 * t_minf));

  ss::bench::section("full paper scale (64000 frames): the 16-bit field "
                     "artifact");
  const RunResult full = run(false, false, 16000);
  std::uint64_t t_full = 0;
  for (unsigned i = 0; i < 4; ++i) t_full += full.missed[i];
  std::printf("max-finding at 64000 frames counts %llu misses, not "
              "~255950: once the non-droppable backlog's head deadlines "
              "fall more than 32768 packet-times behind vtime, the 16-bit "
              "serial comparator (Figure 4's field width) wraps and the "
              "per-slot miss counters stop advancing (saturation at vtime "
              "~43690 here).  A physical Virtex-I build with these field "
              "widths would do the same; the quarter-scale run above is "
              "the in-horizon reproduction.\n",
              static_cast<unsigned long long>(t_full));

  std::printf("\nDocumented deviations (EXPERIMENTS.md): per-stream "
              "min-first counts and the block-mode winner-cycle rotation "
              "depend on unpublished rig details; totals and ordering are "
              "the reproducible shape.\n");
  std::printf("\nCSV: results/table3.csv\n");
  return 0;
}
