// ablation_streaming — the push-vs-pull transfer tradeoff of the card's
// Streaming unit (Section 4.2: push for small transfers, DMA pull for
// bulk), swept quantitatively.
//
// A fixed 64000-arrival workload drains through the streaming unit at one
// offset per packet-time while the watermark policy keeps the card queue
// full.  Swept: the pull threshold (when a refill batch is big enough to
// justify DMA setup + bank-ownership arbitration) and the low watermark
// (how early to refill).  Reported: modeled bus time, refill mix, and
// underruns — the quantity the paper's design is built to avoid.
#include <cstdio>

#include "bench_common.hpp"
#include "hw/streaming_unit.hpp"
#include "util/csv.hpp"

namespace {

struct Outcome {
  ss::hw::StreamingStats stats;
  std::uint64_t drained;
};

Outcome run(std::size_t watermark, std::size_t pull_threshold,
            std::size_t depth) {
  using namespace ss;
  hw::PciModel pci;
  hw::SramBank bank(1 << 16, Nanos{2000});
  queueing::QueueManager qm(1000);
  qm.add_stream(1 << 17);
  hw::StreamingUnitConfig cfg;
  cfg.card_queue_depth = depth;
  cfg.low_watermark = watermark;
  cfg.pull_threshold = pull_threshold;
  hw::StreamingUnit su(cfg, pci, bank, 1);

  const std::uint64_t kArrivals = 64000;
  std::uint64_t produced = 0, drained = 0;
  std::uint16_t off;
  auto produce = [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n && produced < kArrivals; ++i) {
      queueing::Frame f;
      f.arrival_ns = produced * 1000;
      qm.produce(0, f);
      ++produced;
    }
  };
  // Mixed workload: a bulk burst of 192 arrivals every 256 packet-times
  // plus a one-per-4-packet-times trickle — so refills span the whole
  // small-to-bulk batch range and the threshold choice matters.
  std::uint64_t tick = 0;
  while (drained < kArrivals) {
    if (tick % 256 == 0) produce(192);
    if (tick % 4 == 0) produce(1);
    ++tick;
    if (su.needs_refill(0)) su.refill(0, qm);
    if (produced > drained && su.pop_arrival(0, off)) ++drained;
  }
  return {su.stats(), drained};
}

}  // namespace

int main() {
  using namespace ss;
  bench::banner("Ablation (streaming unit)",
                "Push vs pull refill policy for the card's per-stream queues");
  CsvWriter csv(bench::results_dir() + "ablation_streaming.csv",
                {"watermark", "pull_threshold", "pushes", "pulls",
                 "underruns", "bus_ms", "ns_per_offset"});

  bench::section("64000 arrivals, card queue depth 64, bank switch 2 us, "
                 "DMA setup 2 us");
  std::printf("%10s %10s | %8s %8s %10s %9s %14s\n", "watermark",
              "pull_thr", "pushes", "pulls", "underruns", "bus ms",
              "ns/offset");
  for (const std::size_t wm : {4ul, 16ul, 32ul, 48ul}) {
    for (const std::size_t thr : {1ul, 8ul, 16ul, 64ul}) {
      const Outcome o = run(wm, thr, 64);
      const double bus_ms = static_cast<double>(o.stats.transfer_ns) / 1e6;
      const double per =
          static_cast<double>(o.stats.transfer_ns) / o.drained;
      std::printf("%10zu %10zu | %8llu %8llu %10llu %9.2f %14.1f\n", wm,
                  thr,
                  static_cast<unsigned long long>(o.stats.push_refills),
                  static_cast<unsigned long long>(o.stats.pull_refills),
                  static_cast<unsigned long long>(o.stats.underruns),
                  bus_ms, per);
      csv.cell(static_cast<std::uint64_t>(wm));
      csv.cell(static_cast<std::uint64_t>(thr));
      csv.cell(o.stats.push_refills);
      csv.cell(o.stats.pull_refills);
      csv.cell(o.stats.underruns);
      csv.cell(bus_ms);
      csv.cell(per);
      csv.endrow();
    }
  }

  bench::section("reading");
  std::printf("* pull_threshold=1 forces DMA for every refill: the 2 us "
              "setup + 2 us bank arbitration dominate (the RC1000 "
              "bottleneck the paper reports);\n");
  std::printf("* pull_threshold=64 forces PIO always: cheap per refill "
              "but ~150 ns per offset of processor time on the bus;\n");
  std::printf("* the mixed policy (threshold ~16) batches bulk arrivals "
              "over DMA and trickles small top-ups over PIO — the paper's "
              "push/pull design point.\n");
  std::printf("\nCSV: results/ablation_streaming.csv\n");
  return 0;
}
