// pifo_inversions — what SP-PIFO's approximation costs, measured in
// inversions against a true PIFO under adversarial rank distributions.
//
// Sweeps {SP-PIFO with 2/4/8/16/32 bands, exact PIFO on each of the four
// Section-3 hardware substrates} x {heavy-tailed, adversarial-alternating,
// bursty} rank distributions and counts two flavours of disorder in the
// pop stream:
//
//  * inverted pops — pops that surface a rank while a strictly smaller
//    rank is still queued (the SP-PIFO paper's per-packet metric, counted
//    against a live multiset of queued ranks);
//  * pairwise inversions — (i, j) pairs with i before j in the pop order
//    but rank_i > rank_j, counted exactly with a Fenwick tree over the
//    coordinate-compressed pop sequence.  NOTE: with interleaved arrivals
//    even a perfect PIFO has nonzero pairwise disorder (a small rank that
//    arrives after a large one was already — correctly — served), so the
//    comparable number is pairwise_excess: each row's count minus the
//    exact-PIFO count for the identical op sequence.
//
// Exact-PIFO rows must show zero inverted pops and zero excess (the hwpq
// tie-break contract makes them true priority queues, and all four
// substrates must agree pop-for-pop); their hw_cycles/area_slices columns
// price what rank-programmability costs on each substrate.  SP-PIFO rows
// show the approximation error shrinking as bands grow, plus the push-up/
// push-down adaptation counters that explain it.
//
//   pifo_inversions              # full sweep, 40k ops per cell
//   pifo_inversions --quick      # CI-sized sweep (seconds)
//   pifo_inversions --ops 8000   # explicit depth
//   pifo_inversions --out p.json # artifact location
//
// Emits BENCH_pifo.json (schema in docs/formats.md); the committed copy
// at the repo root is what CI's pifo-smoke job regenerates with --quick
// and schema-checks.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pifo/exact_pifo.hpp"
#include "pifo/sp_pifo.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace {

using namespace ss;

constexpr std::size_t kCapacity = 256;

// ---------------------------------------------------------------------------
// Adversarial rank distributions.  Each generator is a deterministic
// function of (Rng, index) so every backend in a cell sees the *same*
// rank sequence.
// ---------------------------------------------------------------------------

struct Distribution {
  const char* name;
  std::uint64_t (*rank)(Rng& rng, std::uint64_t i);
};

// Pareto-ish tail: mostly small ranks with rare enormous ones.  The huge
// ranks park at the top of SP-PIFO's bound ladder and squeeze every later
// small rank through band 0.
std::uint64_t heavy_tailed(Rng& rng, std::uint64_t) {
  const double u = rng.uniform();
  const double r = 8.0 * std::pow(1.0 - u, -1.5);
  return static_cast<std::uint64_t>(std::min(r, 1.0e6));
}

// Strict high/low alternation: every high admission pushes the bounds up,
// and the very next low rank undercuts band 0 — the continuous push-down
// regime, SP-PIFO's worst case.
std::uint64_t adversarial_alternating(Rng& rng, std::uint64_t i) {
  return (i % 2 == 0) ? 1000 + rng.below(64) : rng.below(64);
}

// Rank plateaus: runs of near-equal ranks whose base level jumps between
// bursts, so the bound ladder keeps re-converging to a new regime.
std::uint64_t bursty(Rng& rng, std::uint64_t i) {
  static thread_local std::uint64_t base = 0, left = 0;
  if (i == 0) { base = 0; left = 0; }  // reset per run
  if (left == 0) {
    base = rng.below(4096);
    left = 1 + rng.below(24);
  }
  --left;
  return base + rng.below(8);
}

constexpr Distribution kDistributions[] = {
    {"heavy-tailed", heavy_tailed},
    {"adversarial-alternating", adversarial_alternating},
    {"bursty", bursty},
};

// ---------------------------------------------------------------------------
// Exact pairwise-inversion count: Fenwick tree over the coordinate-
// compressed pop sequence.  O(n log n), no sampling, no approximation.
// ---------------------------------------------------------------------------

class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}
  void add(std::size_t i) {  // 1-based
    for (; i < tree_.size(); i += i & (~i + 1)) ++tree_[i];
  }
  [[nodiscard]] std::uint64_t prefix(std::size_t i) const {  // count of <= i
    std::uint64_t s = 0;
    for (; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

 private:
  std::vector<std::uint64_t> tree_;
};

std::uint64_t pairwise_inversions(const std::vector<std::uint64_t>& pops) {
  std::vector<std::uint64_t> sorted(pops);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  Fenwick fw(sorted.size());
  std::uint64_t inv = 0, seen = 0;
  for (const std::uint64_t r : pops) {
    const std::size_t idx = static_cast<std::size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), r) - sorted.begin() + 1);
    inv += seen - fw.prefix(idx);  // previously popped ranks strictly > r
    fw.add(idx);
    ++seen;
  }
  return inv;
}

// ---------------------------------------------------------------------------
// One measurement cell: a backend driven through an adversarial
// push/pop interleaving, disorder counted against a live rank multiset.
// ---------------------------------------------------------------------------

struct Row {
  std::string dist;
  std::string backend;
  unsigned bands = 0;  // 0 for exact backends
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t inverted_pops = 0;
  std::uint64_t pairwise = 0;
  std::uint64_t pairwise_excess = 0;  // pairwise minus the exact baseline
  double inversion_rate_pct = 0;      // inverted pops / pops
  std::uint64_t pushups = 0;      // SP-PIFO only
  std::uint64_t pushdowns = 0;    // SP-PIFO only
  std::uint64_t hw_cycles = 0;    // exact only
  unsigned area_slices = 0;       // exact only
};

Row run_cell(const Distribution& dist, pifo::PifoBackend& backend,
             std::uint64_t ops, std::uint64_t seed) {
  Row row;
  row.dist = dist.name;
  row.backend = backend.name();

  Rng rng(seed);
  Rng rank_rng(seed ^ 0x9E3779B97F4A7C15ULL);
  std::multiset<std::uint64_t> queued;
  std::vector<std::uint64_t> pop_ranks;
  pop_ranks.reserve(ops / 2);

  std::uint32_t seq = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const bool push = backend.size() == 0 ||
                      (backend.size() < backend.capacity() && rng.chance(0.6));
    if (push) {
      sched::Pkt p;
      p.stream = static_cast<std::uint32_t>(seq % 8);
      p.bytes = 64;
      p.arrival_ns = i;
      p.seq = seq++;
      const std::uint64_t r = dist.rank(rank_rng, row.pushes);
      backend.push(p, r);
      queued.insert(r);
      ++row.pushes;
    } else {
      const auto got = backend.pop();
      if (!got) continue;
      ++row.pops;
      if (got->rank > *queued.begin()) ++row.inverted_pops;
      queued.erase(queued.find(got->rank));
      pop_ranks.push_back(got->rank);
    }
  }
  while (auto got = backend.pop()) {  // full drain counts too
    ++row.pops;
    if (got->rank > *queued.begin()) ++row.inverted_pops;
    queued.erase(queued.find(got->rank));
    pop_ranks.push_back(got->rank);
  }

  row.pairwise = pairwise_inversions(pop_ranks);
  if (row.pops > 0) {
    row.inversion_rate_pct = 100.0 * static_cast<double>(row.inverted_pops) /
                             static_cast<double>(row.pops);
  }
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                std::uint64_t ops, bool quick, double duration_s) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"pifo_inversions\",\n");
  std::fprintf(f, "  \"version\": 1,\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"env\": %s,\n", bench::env_json(duration_s).c_str());
  std::fprintf(f, "  \"ops\": %llu,\n", static_cast<unsigned long long>(ops));
  std::fprintf(f, "  \"capacity\": %zu,\n", kCapacity);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"dist\": \"%s\", \"backend\": \"%s\", \"bands\": %u, "
        "\"pushes\": %llu, \"pops\": %llu, \"inverted_pops\": %llu, "
        "\"pairwise_inversions\": %llu, \"pairwise_excess\": %llu, "
        "\"inversion_rate_pct\": %.3f, "
        "\"pushups\": %llu, \"pushdowns\": %llu, "
        "\"hw_cycles\": %llu, \"area_slices\": %u}%s\n",
        r.dist.c_str(), r.backend.c_str(), r.bands,
        static_cast<unsigned long long>(r.pushes),
        static_cast<unsigned long long>(r.pops),
        static_cast<unsigned long long>(r.inverted_pops),
        static_cast<unsigned long long>(r.pairwise),
        static_cast<unsigned long long>(r.pairwise_excess),
        r.inversion_rate_pct,
        static_cast<unsigned long long>(r.pushups),
        static_cast<unsigned long long>(r.pushdowns),
        static_cast<unsigned long long>(r.hw_cycles), r.area_slices,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t ops = 40000;
  std::string out = "BENCH_pifo.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
      ops = 4000;
    } else if (a == "--ops" && i + 1 < argc) {
      ops = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: pifo_inversions [--quick] [--ops N] [--out FILE]\n");
      return 2;
    }
  }

  bench::banner("rank layer",
                "SP-PIFO approximation error vs exact PIFO substrates");

  const unsigned band_counts[] = {2, 4, 8, 16, 32};
  std::vector<Row> rows;

  for (const Distribution& dist : kDistributions) {
    bench::section(dist.name);
    std::printf("%-28s %6s %8s %10s %12s %8s\n", "backend", "bands", "pops",
                "inv_pops", "excess", "rate%");
    Fnv1a64 h;
    h.mix(std::string_view{dist.name});
    const std::uint64_t seed = 0xC0FFEEULL ^ h.digest();
    // Exact substrates first: the binary heap's pairwise count is the
    // arrival-forced floor every other row is measured against.
    std::uint64_t baseline = 0;
    for (const hwpq::PqKind kind : hwpq::kAllPqKinds) {
      pifo::ExactPifo exact(kind, kCapacity);
      Row r = run_cell(dist, exact, ops, seed);
      if (kind == hwpq::PqKind::kBinaryHeap) baseline = r.pairwise;
      r.pairwise_excess = r.pairwise - std::min(baseline, r.pairwise);
      r.hw_cycles = exact.cycles();
      r.area_slices = exact.area_slices();
      std::printf("%-28s %6s %8llu %10llu %12llu %8.2f\n", r.backend.c_str(),
                  "-", static_cast<unsigned long long>(r.pops),
                  static_cast<unsigned long long>(r.inverted_pops),
                  static_cast<unsigned long long>(r.pairwise_excess),
                  r.inversion_rate_pct);
      rows.push_back(std::move(r));
    }
    for (const unsigned b : band_counts) {
      pifo::SpPifo sp(kCapacity, b);
      Row r = run_cell(dist, sp, ops, seed);
      r.bands = b;
      r.pairwise_excess = r.pairwise - std::min(baseline, r.pairwise);
      r.pushups = sp.pushups();
      r.pushdowns = sp.pushdowns();
      std::printf("%-28s %6u %8llu %10llu %12llu %8.2f\n", r.backend.c_str(),
                  r.bands, static_cast<unsigned long long>(r.pops),
                  static_cast<unsigned long long>(r.inverted_pops),
                  static_cast<unsigned long long>(r.pairwise_excess),
                  r.inversion_rate_pct);
      rows.push_back(std::move(r));
    }
  }

  write_json(out, rows, ops, quick, bench::elapsed_s(t0));

  // The claims the artifact backs: exact substrates are inversion-free
  // (zero inverted pops, zero excess over the shared baseline) under
  // every distribution, and growing the SP-PIFO band count weakly
  // reduces disorder (32 bands never worse than 2).
  bench::section("verdicts");
  bool all_ok = true;
  for (const Row& r : rows) {
    if (r.backend.rfind("exact-pifo/", 0) == 0 &&
        (r.inverted_pops != 0 || r.pairwise_excess != 0)) {
      std::printf("exact backend %s shows inversions under %s: BROKEN\n",
                  r.backend.c_str(), r.dist.c_str());
      all_ok = false;
    }
  }
  if (all_ok) std::printf("exact substrates inversion-free:  REPRODUCED\n");
  for (const Distribution& dist : kDistributions) {
    std::uint64_t at2 = 0, at32 = 0;
    for (const Row& r : rows) {
      if (r.dist != dist.name || r.bands == 0) continue;
      if (r.bands == 2) at2 = r.pairwise_excess;
      if (r.bands == 32) at32 = r.pairwise_excess;
    }
    const bool ok = at32 <= at2;
    all_ok = all_ok && ok;
    std::printf("32 bands <= 2 bands (%s):  %s (%llu vs %llu excess)\n",
                dist.name, ok ? "REPRODUCED" : "DIVERGED",
                static_cast<unsigned long long>(at32),
                static_cast<unsigned long long>(at2));
  }
  std::printf("\nJSON: %s\n", out.c_str());
  return all_ok ? 0 : 1;
}
