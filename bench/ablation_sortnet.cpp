// ablation_sortnet — quantifies the fidelity caveat DESIGN.md documents:
// the paper's log2(N)-pass recirculating shuffle is an exact MAX-FINDER
// but only a partial sorter, while the bitonic schedule (log2N(log2N+1)/2
// passes) sorts fully and odd-even transposition (N passes) sits between.
//
// For each schedule and N, over randomized attribute sets:
//   * max-correct rate (must be 1.0 for every schedule);
//   * fully-sorted block rate;
//   * mean displacement of each stream from its true rank (block quality);
//   * passes per decision cycle (the latency cost of better blocks).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "hw/shuffle.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ss;
  using namespace ss::hw;
  bench::banner("Ablation (sorting schedules)",
                "Perfect-shuffle vs bitonic vs odd-even transposition");

  CsvWriter csv(bench::results_dir() + "ablation_sortnet.csv",
                {"n", "schedule", "passes", "max_correct_rate",
                 "fully_sorted_rate", "mean_displacement"});
  Rng rng(2025);
  const int kTrials = 2000;

  bench::section("block quality over 2000 random attribute sets per cell");
  std::printf("%4s %-16s %7s %12s %13s %14s\n", "N", "schedule", "passes",
              "max-correct", "fully-sorted", "mean displ.");
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    for (const auto sched :
         {SortSchedule::kPerfectShuffle, SortSchedule::kBitonic,
          SortSchedule::kOddEven}) {
      ShuffleNetwork net(n, sched, ComparisonMode::kDwcsFull);
      int max_ok = 0, sorted_ok = 0;
      double displacement = 0;
      for (int t = 0; t < kTrials; ++t) {
        std::vector<AttrWord> words(n);
        for (unsigned i = 0; i < n; ++i) {
          words[i].deadline = Deadline{rng.below(40)};
          words[i].loss_num = static_cast<Loss>(rng.below(3));
          words[i].loss_den = static_cast<Loss>(1 + rng.below(4));
          words[i].arrival = Arrival{rng.below(8)};
          words[i].id = static_cast<SlotId>(i);
          words[i].pending = true;
        }
        // True ranking by the same ordering rules.
        std::vector<AttrWord> truth = words;
        std::sort(truth.begin(), truth.end(),
                  [](const AttrWord& a, const AttrWord& b) {
                    return decide(a, b, ComparisonMode::kDwcsFull).a_wins;
                  });
        net.load(words);
        net.run_all();
        const auto lanes = net.lanes();
        max_ok += lanes[0].id == truth[0].id;
        bool sorted = true;
        for (unsigned i = 0; i < n; ++i) {
          sorted = sorted && lanes[i].id == truth[i].id;
          // Displacement: |lane index - true rank| of each stream.
          for (unsigned r = 0; r < n; ++r) {
            if (truth[r].id == lanes[i].id) {
              displacement += std::abs(static_cast<int>(i) -
                                       static_cast<int>(r));
              break;
            }
          }
        }
        sorted_ok += sorted;
      }
      const double max_rate = static_cast<double>(max_ok) / kTrials;
      const double sort_rate = static_cast<double>(sorted_ok) / kTrials;
      const double mean_disp = displacement / (kTrials * n);
      const char* name = sched == SortSchedule::kPerfectShuffle ? "shuffle"
                         : sched == SortSchedule::kBitonic      ? "bitonic"
                                                                : "odd-even";
      std::printf("%4u %-16s %7u %12.3f %13.3f %14.3f\n", n, name,
                  net.total_passes(), max_rate, sort_rate, mean_disp);
      csv.cell(std::uint64_t{n});
      csv.cell(name);
      csv.cell(std::uint64_t{net.total_passes()});
      csv.cell(max_rate);
      csv.cell(sort_rate);
      csv.cell(mean_disp);
      csv.endrow();
    }
  }

  bench::section("reading");
  std::printf("* max-correct is 1.000 everywhere: the paper's WR "
              "max-finding claim holds for every schedule.\n");
  std::printf("* the shuffle's fully-sorted rate < 1 beyond trivial inputs: "
              "the log2(N)-cycle 'sorted list' is approximate; bitonic "
              "buys exactness for log2N(log2N+1)/2 passes.\n");
  std::printf("* Table 3's block results need only the max-first prefix "
              "property, which the shuffle provides.\n");
  std::printf("\nCSV: results/ablation_sortnet.csv\n");
  return 0;
}
