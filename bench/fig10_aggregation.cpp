// fig10_aggregation — reproduces Figure 10: "Aggregation of 100 Streamlets
// into a Stream-slot".
//
// The paper's setup: "we assigned 100 streamlet queues to each stream-slot
// ... stream-slots are divided in the ratio 1:1:2:4 ie. 2.0, 2.0, 4.0 and
// 8.0 MBps with 100 streamlets in each slot with equal bandwidth
// allocation ... Stream-slot 4 has two streamlet sets, set 1 with double
// bandwidth than set 2", served round-robin on the Stream processor while
// the FPGA handles inter-slot scheduling.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/aggregation.hpp"
#include "core/endsystem.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"

int main() {
  using namespace ss;
  bench::banner("Figure 10", "100 streamlets per stream-slot, slots 2:2:4:8 MBps");

  core::EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.link_gbps = 0.128;  // 16 MBps total
  cfg.keep_series = false;
  core::Endsystem es(cfg);
  for (double w : {1.0, 1.0, 2.0, 4.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    r.droppable = false;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(100), 1500);
  }
  core::AggregationManager agg;
  for (int s = 0; s < 3; ++s) agg.bind_slot({{100, 1}});
  agg.bind_slot({{50, 2}, {50, 1}});  // slot 4: set 1 at 2x set 2

  const std::vector<std::uint64_t> frames = {8000, 8000, 16000, 32000};
  es.run(frames);
  const auto& mon = es.monitor();

  // Fan each slot's grants out to its streamlets exactly as the Stream
  // processor would (round-robin within sets, weighted across sets).
  for (std::uint32_t slot = 0; slot < 4; ++slot) {
    for (std::uint64_t f = 0; f < mon.frames(slot); ++f) agg.on_grant(slot);
  }

  bench::section("per-streamlet bandwidth (MBps)");
  CsvWriter csv(bench::results_dir() + "fig10_streamlets.csv",
                {"slot", "set", "streamlet", "grants", "mbps"});
  AsciiChart chart("Figure 10: streamlet bandwidth by slot", "streamlet id",
                   "MBps", 68, 16);
  const char glyphs[4] = {'1', '2', '3', '4'};
  std::printf("%6s %5s %12s %16s %16s\n", "slot", "set", "streamlets",
              "measured MBps", "paper MBps");
  const double paper_equal[3] = {0.02, 0.02, 0.04};
  for (std::uint32_t slot = 0; slot < 4; ++slot) {
    const double slot_mbps = mon.mean_mbps(slot);
    const auto& grants = agg.grants(slot);
    std::uint64_t total_grants = 0;
    for (auto g : grants) total_grants += g;
    Series s;
    s.name = "slot " + std::to_string(slot + 1);
    s.glyph = glyphs[slot];
    for (std::uint32_t i = 0; i < grants.size(); ++i) {
      const double mbps = slot_mbps * static_cast<double>(grants[i]) /
                          static_cast<double>(total_grants);
      s.x.push_back(slot * 100 + i);
      s.y.push_back(mbps);
      csv.cell(std::uint64_t{slot + 1});
      csv.cell(static_cast<std::uint64_t>(i < 50 || slot < 3 ? 1 : 2));
      csv.cell(std::uint64_t{i});
      csv.cell(grants[i]);
      csv.cell(mbps);
      csv.endrow();
    }
    chart.add(std::move(s));
    if (slot < 3) {
      const double per = slot_mbps / 100.0;
      std::printf("%6u %5u %12u %16.4f %16.3f\n", slot + 1, 1, 100, per,
                  paper_equal[slot]);
    } else {
      const double set1 = slot_mbps * (2.0 / 3.0) / 50.0;
      const double set2 = slot_mbps * (1.0 / 3.0) / 50.0;
      std::printf("%6u %5u %12u %16.4f %16s\n", slot + 1, 1, 50, set1,
                  "2x set 2");
      std::printf("%6u %5u %12u %16.4f %16s\n", slot + 1, 2, 50, set2,
                  "1x");
      std::printf("   slot-4 set ratio: %.2f (paper: 2.0)\n", set1 / set2);
    }
  }
  std::fputs(chart.render().c_str(), stdout);

  bench::section("resource argument (what aggregation saves)");
  std::printf("400 streams with per-stream QoS would need 400 stream-slots "
              "(impossible: 5-bit IDs cap at 32, and 400 x 150 = 60000 "
              "slices overflow the XCV1000's 12288).\n");
  std::printf("Aggregated: 4 stream-slots of FPGA state + 400 circular "
              "queues in host memory (~%zu KB of descriptors).\n",
              static_cast<std::size_t>(400 * 64 / 1024));
  std::printf("\nCSV: results/fig10_streamlets.csv\n");
  return 0;
}
