// fig6_timeline — reproduces Figure 6: "ShareStreams Scheduler Timeline
// (Four Stream Scheduling Timeline)".
//
// The figure shows the Control & Steering unit beginning in LOAD and then
// alternating SCHEDULE / PRIORITY_UPDATE as four streams are scheduled.
// This bench renders exactly that: a per-hardware-cycle lane of FSM
// states for a 4-slot DWCS schedule, annotated with the network passes,
// the circulated winner of each decision cycle, and the register-level
// attribute changes (from the Tracer).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "hw/control_unit.hpp"
#include "hw/scheduler_chip.hpp"
#include "hw/trace.hpp"

namespace {

char state_glyph(ss::hw::ControlUnit::Action a) {
  using Action = ss::hw::ControlUnit::Action;
  switch (a) {
    case Action::kLoadCycle: return 'L';
    case Action::kSchedulePass: return 'S';
    case Action::kUpdateApply: return 'U';
    case Action::kUpdateSettle: return 'u';
    case Action::kOutputCycle: return 'O';
    case Action::kDecisionDone: return '|';
  }
  return '?';
}

}  // namespace

int main() {
  using namespace ss;
  bench::banner("Figure 6", "Scheduler timeline: LOAD then alternating "
                            "SCHEDULE / PRIORITY_UPDATE (4 streams)");

  // The FSM lane, straight from the Control & Steering unit.
  bench::section("hardware-cycle lane (L=load S=schedule-pass U=update-"
                 "apply u=settle O=output |=decision boundary)");
  hw::ControlUnit cu(4, 2, hw::ControlTiming{});
  std::string lane, ruler;
  for (int cycle = 0; cycle < 4 * 13; ++cycle) {
    lane.push_back(state_glyph(cu.tick()));
    ruler.push_back(cycle % 13 == 0 ? '0' + static_cast<char>(cycle / 13)
                                    : ' ');
  }
  std::printf("decision:  %s\n", ruler.c_str());
  std::printf("fsm:       %s\n", lane.c_str());
  std::printf("(13 hardware cycles per decision at 4 slots: 4L + 2S + "
              "1U + 2u + 4O — the 7.69 M decisions/s calibration)\n");

  // The same timeline at the functional level: four DWCS streams, traced.
  bench::section("four-stream schedule, register-level view (Tracer)");
  hw::ChipConfig cfg;
  cfg.slots = 4;
  cfg.cmp_mode = hw::ComparisonMode::kDwcsFull;
  hw::SchedulerChip chip(cfg);
  struct Init {
    std::uint16_t T;
    hw::Loss x, y;
    std::uint64_t d;
  };
  const Init init[4] = {{2, 1, 4, 2}, {3, 0, 2, 3}, {4, 2, 5, 1},
                        {2, 1, 2, 4}};
  for (unsigned i = 0; i < 4; ++i) {
    hw::SlotConfig sc;
    sc.mode = hw::SlotMode::kDwcs;
    sc.period = init[i].T;
    sc.loss_num = init[i].x;
    sc.loss_den = init[i].y;
    sc.initial_deadline = hw::Deadline{init[i].d};
    chip.load_slot(static_cast<hw::SlotId>(i), sc);
  }
  hw::Tracer tracer;
  chip.attach_tracer(&tracer);
  for (int k = 0; k < 10; ++k) {
    for (unsigned i = 0; i < 4; ++i) {
      if ((k + i) % 2 == 0) chip.push_request(static_cast<hw::SlotId>(i));
    }
    chip.run_decision_cycle();
  }
  std::fputs(tracer.render_all().c_str(), stdout);

  bench::section("alternation check (the Figure-6 claim)");
  std::printf("after the initial LOAD the unit alternates SCHEDULE and "
              "PRIORITY_UPDATE every decision cycle: %s\n",
              lane.find("SSU") != std::string::npos &&
                      lane.find("USS") == std::string::npos
                  ? "REPRODUCED"
                  : "check the lane above");
  std::printf("fair-queuing mapping drops the U/u cycles entirely "
              "(bypass_update): %u cycles/decision instead of 13.\n",
              [] {
                hw::ControlTiming t;
                t.bypass_update = true;
                return hw::ControlUnit(4, 2, t)
                    .sustained_cycles_per_decision();
              }());
  return 0;
}
