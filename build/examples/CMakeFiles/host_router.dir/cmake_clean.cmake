file(REMOVE_RECURSE
  "CMakeFiles/host_router.dir/host_router.cpp.o"
  "CMakeFiles/host_router.dir/host_router.cpp.o.d"
  "host_router"
  "host_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
