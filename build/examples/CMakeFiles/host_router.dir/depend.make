# Empty dependencies file for host_router.
# This may be replaced when dependencies are built.
