file(REMOVE_RECURSE
  "CMakeFiles/ss_cli.dir/ss_cli.cpp.o"
  "CMakeFiles/ss_cli.dir/ss_cli.cpp.o.d"
  "ss_cli"
  "ss_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
