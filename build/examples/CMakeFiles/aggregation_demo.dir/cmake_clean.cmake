file(REMOVE_RECURSE
  "CMakeFiles/aggregation_demo.dir/aggregation_demo.cpp.o"
  "CMakeFiles/aggregation_demo.dir/aggregation_demo.cpp.o.d"
  "aggregation_demo"
  "aggregation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
