# Empty compiler generated dependencies file for aggregation_demo.
# This may be replaced when dependencies are built.
