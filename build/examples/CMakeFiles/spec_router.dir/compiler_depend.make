# Empty compiler generated dependencies file for spec_router.
# This may be replaced when dependencies are built.
