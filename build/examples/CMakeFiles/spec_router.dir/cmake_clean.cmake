file(REMOVE_RECURSE
  "CMakeFiles/spec_router.dir/spec_router.cpp.o"
  "CMakeFiles/spec_router.dir/spec_router.cpp.o.d"
  "spec_router"
  "spec_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
