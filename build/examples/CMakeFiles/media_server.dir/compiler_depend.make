# Empty compiler generated dependencies file for media_server.
# This may be replaced when dependencies are built.
