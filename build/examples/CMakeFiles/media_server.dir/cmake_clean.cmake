file(REMOVE_RECURSE
  "CMakeFiles/media_server.dir/media_server.cpp.o"
  "CMakeFiles/media_server.dir/media_server.cpp.o.d"
  "media_server"
  "media_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
