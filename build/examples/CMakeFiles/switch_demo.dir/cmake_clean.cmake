file(REMOVE_RECURSE
  "CMakeFiles/switch_demo.dir/switch_demo.cpp.o"
  "CMakeFiles/switch_demo.dir/switch_demo.cpp.o.d"
  "switch_demo"
  "switch_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
