# Empty compiler generated dependencies file for switch_demo.
# This may be replaced when dependencies are built.
