# Empty compiler generated dependencies file for linecard_10g.
# This may be replaced when dependencies are built.
