file(REMOVE_RECURSE
  "CMakeFiles/linecard_10g.dir/linecard_10g.cpp.o"
  "CMakeFiles/linecard_10g.dir/linecard_10g.cpp.o.d"
  "linecard_10g"
  "linecard_10g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linecard_10g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
