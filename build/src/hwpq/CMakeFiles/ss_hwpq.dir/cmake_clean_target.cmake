file(REMOVE_RECURSE
  "libss_hwpq.a"
)
