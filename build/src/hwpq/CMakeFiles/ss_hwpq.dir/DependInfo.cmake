
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwpq/binary_heap_pq.cpp" "src/hwpq/CMakeFiles/ss_hwpq.dir/binary_heap_pq.cpp.o" "gcc" "src/hwpq/CMakeFiles/ss_hwpq.dir/binary_heap_pq.cpp.o.d"
  "/root/repo/src/hwpq/pipelined_heap_pq.cpp" "src/hwpq/CMakeFiles/ss_hwpq.dir/pipelined_heap_pq.cpp.o" "gcc" "src/hwpq/CMakeFiles/ss_hwpq.dir/pipelined_heap_pq.cpp.o.d"
  "/root/repo/src/hwpq/shift_register_pq.cpp" "src/hwpq/CMakeFiles/ss_hwpq.dir/shift_register_pq.cpp.o" "gcc" "src/hwpq/CMakeFiles/ss_hwpq.dir/shift_register_pq.cpp.o.d"
  "/root/repo/src/hwpq/systolic_pq.cpp" "src/hwpq/CMakeFiles/ss_hwpq.dir/systolic_pq.cpp.o" "gcc" "src/hwpq/CMakeFiles/ss_hwpq.dir/systolic_pq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/ss_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/ss_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
