# Empty dependencies file for ss_hwpq.
# This may be replaced when dependencies are built.
