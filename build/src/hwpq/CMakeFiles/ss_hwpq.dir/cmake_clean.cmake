file(REMOVE_RECURSE
  "CMakeFiles/ss_hwpq.dir/binary_heap_pq.cpp.o"
  "CMakeFiles/ss_hwpq.dir/binary_heap_pq.cpp.o.d"
  "CMakeFiles/ss_hwpq.dir/pipelined_heap_pq.cpp.o"
  "CMakeFiles/ss_hwpq.dir/pipelined_heap_pq.cpp.o.d"
  "CMakeFiles/ss_hwpq.dir/shift_register_pq.cpp.o"
  "CMakeFiles/ss_hwpq.dir/shift_register_pq.cpp.o.d"
  "CMakeFiles/ss_hwpq.dir/systolic_pq.cpp.o"
  "CMakeFiles/ss_hwpq.dir/systolic_pq.cpp.o.d"
  "libss_hwpq.a"
  "libss_hwpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_hwpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
