
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/queue_manager.cpp" "src/queueing/CMakeFiles/ss_queueing.dir/queue_manager.cpp.o" "gcc" "src/queueing/CMakeFiles/ss_queueing.dir/queue_manager.cpp.o.d"
  "/root/repo/src/queueing/red_queue.cpp" "src/queueing/CMakeFiles/ss_queueing.dir/red_queue.cpp.o" "gcc" "src/queueing/CMakeFiles/ss_queueing.dir/red_queue.cpp.o.d"
  "/root/repo/src/queueing/token_bucket.cpp" "src/queueing/CMakeFiles/ss_queueing.dir/token_bucket.cpp.o" "gcc" "src/queueing/CMakeFiles/ss_queueing.dir/token_bucket.cpp.o.d"
  "/root/repo/src/queueing/traffic_gen.cpp" "src/queueing/CMakeFiles/ss_queueing.dir/traffic_gen.cpp.o" "gcc" "src/queueing/CMakeFiles/ss_queueing.dir/traffic_gen.cpp.o.d"
  "/root/repo/src/queueing/transmission_engine.cpp" "src/queueing/CMakeFiles/ss_queueing.dir/transmission_engine.cpp.o" "gcc" "src/queueing/CMakeFiles/ss_queueing.dir/transmission_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
