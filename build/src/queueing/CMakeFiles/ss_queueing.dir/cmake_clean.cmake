file(REMOVE_RECURSE
  "CMakeFiles/ss_queueing.dir/queue_manager.cpp.o"
  "CMakeFiles/ss_queueing.dir/queue_manager.cpp.o.d"
  "CMakeFiles/ss_queueing.dir/red_queue.cpp.o"
  "CMakeFiles/ss_queueing.dir/red_queue.cpp.o.d"
  "CMakeFiles/ss_queueing.dir/token_bucket.cpp.o"
  "CMakeFiles/ss_queueing.dir/token_bucket.cpp.o.d"
  "CMakeFiles/ss_queueing.dir/traffic_gen.cpp.o"
  "CMakeFiles/ss_queueing.dir/traffic_gen.cpp.o.d"
  "CMakeFiles/ss_queueing.dir/transmission_engine.cpp.o"
  "CMakeFiles/ss_queueing.dir/transmission_engine.cpp.o.d"
  "libss_queueing.a"
  "libss_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
