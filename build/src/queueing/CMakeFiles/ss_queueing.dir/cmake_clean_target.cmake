file(REMOVE_RECURSE
  "libss_queueing.a"
)
