# Empty compiler generated dependencies file for ss_queueing.
# This may be replaced when dependencies are built.
