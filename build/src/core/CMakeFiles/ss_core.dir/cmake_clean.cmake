file(REMOVE_RECURSE
  "CMakeFiles/ss_core.dir/admission.cpp.o"
  "CMakeFiles/ss_core.dir/admission.cpp.o.d"
  "CMakeFiles/ss_core.dir/aggregation.cpp.o"
  "CMakeFiles/ss_core.dir/aggregation.cpp.o.d"
  "CMakeFiles/ss_core.dir/block_policy.cpp.o"
  "CMakeFiles/ss_core.dir/block_policy.cpp.o.d"
  "CMakeFiles/ss_core.dir/endsystem.cpp.o"
  "CMakeFiles/ss_core.dir/endsystem.cpp.o.d"
  "CMakeFiles/ss_core.dir/framework.cpp.o"
  "CMakeFiles/ss_core.dir/framework.cpp.o.d"
  "CMakeFiles/ss_core.dir/hierarchical.cpp.o"
  "CMakeFiles/ss_core.dir/hierarchical.cpp.o.d"
  "CMakeFiles/ss_core.dir/linecard.cpp.o"
  "CMakeFiles/ss_core.dir/linecard.cpp.o.d"
  "CMakeFiles/ss_core.dir/qos_monitor.cpp.o"
  "CMakeFiles/ss_core.dir/qos_monitor.cpp.o.d"
  "CMakeFiles/ss_core.dir/slo_report.cpp.o"
  "CMakeFiles/ss_core.dir/slo_report.cpp.o.d"
  "CMakeFiles/ss_core.dir/spec_parser.cpp.o"
  "CMakeFiles/ss_core.dir/spec_parser.cpp.o.d"
  "CMakeFiles/ss_core.dir/threaded_endsystem.cpp.o"
  "CMakeFiles/ss_core.dir/threaded_endsystem.cpp.o.d"
  "libss_core.a"
  "libss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
