
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cpp" "src/core/CMakeFiles/ss_core.dir/admission.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/admission.cpp.o.d"
  "/root/repo/src/core/aggregation.cpp" "src/core/CMakeFiles/ss_core.dir/aggregation.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/aggregation.cpp.o.d"
  "/root/repo/src/core/block_policy.cpp" "src/core/CMakeFiles/ss_core.dir/block_policy.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/block_policy.cpp.o.d"
  "/root/repo/src/core/endsystem.cpp" "src/core/CMakeFiles/ss_core.dir/endsystem.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/endsystem.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/ss_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/hierarchical.cpp" "src/core/CMakeFiles/ss_core.dir/hierarchical.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/hierarchical.cpp.o.d"
  "/root/repo/src/core/linecard.cpp" "src/core/CMakeFiles/ss_core.dir/linecard.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/linecard.cpp.o.d"
  "/root/repo/src/core/qos_monitor.cpp" "src/core/CMakeFiles/ss_core.dir/qos_monitor.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/qos_monitor.cpp.o.d"
  "/root/repo/src/core/slo_report.cpp" "src/core/CMakeFiles/ss_core.dir/slo_report.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/slo_report.cpp.o.d"
  "/root/repo/src/core/spec_parser.cpp" "src/core/CMakeFiles/ss_core.dir/spec_parser.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/spec_parser.cpp.o.d"
  "/root/repo/src/core/threaded_endsystem.cpp" "src/core/CMakeFiles/ss_core.dir/threaded_endsystem.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/threaded_endsystem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/ss_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/dwcs/CMakeFiles/ss_dwcs.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/ss_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ss_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
