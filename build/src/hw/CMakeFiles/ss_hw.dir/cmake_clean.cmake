file(REMOVE_RECURSE
  "CMakeFiles/ss_hw.dir/area_model.cpp.o"
  "CMakeFiles/ss_hw.dir/area_model.cpp.o.d"
  "CMakeFiles/ss_hw.dir/control_unit.cpp.o"
  "CMakeFiles/ss_hw.dir/control_unit.cpp.o.d"
  "CMakeFiles/ss_hw.dir/decision_block.cpp.o"
  "CMakeFiles/ss_hw.dir/decision_block.cpp.o.d"
  "CMakeFiles/ss_hw.dir/decision_block_rtl.cpp.o"
  "CMakeFiles/ss_hw.dir/decision_block_rtl.cpp.o.d"
  "CMakeFiles/ss_hw.dir/dma.cpp.o"
  "CMakeFiles/ss_hw.dir/dma.cpp.o.d"
  "CMakeFiles/ss_hw.dir/pci.cpp.o"
  "CMakeFiles/ss_hw.dir/pci.cpp.o.d"
  "CMakeFiles/ss_hw.dir/register_block.cpp.o"
  "CMakeFiles/ss_hw.dir/register_block.cpp.o.d"
  "CMakeFiles/ss_hw.dir/scheduler_chip.cpp.o"
  "CMakeFiles/ss_hw.dir/scheduler_chip.cpp.o.d"
  "CMakeFiles/ss_hw.dir/shuffle.cpp.o"
  "CMakeFiles/ss_hw.dir/shuffle.cpp.o.d"
  "CMakeFiles/ss_hw.dir/sram.cpp.o"
  "CMakeFiles/ss_hw.dir/sram.cpp.o.d"
  "CMakeFiles/ss_hw.dir/streaming_unit.cpp.o"
  "CMakeFiles/ss_hw.dir/streaming_unit.cpp.o.d"
  "CMakeFiles/ss_hw.dir/timing_model.cpp.o"
  "CMakeFiles/ss_hw.dir/timing_model.cpp.o.d"
  "CMakeFiles/ss_hw.dir/trace.cpp.o"
  "CMakeFiles/ss_hw.dir/trace.cpp.o.d"
  "libss_hw.a"
  "libss_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
