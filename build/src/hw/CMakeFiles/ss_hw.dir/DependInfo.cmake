
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/area_model.cpp" "src/hw/CMakeFiles/ss_hw.dir/area_model.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/area_model.cpp.o.d"
  "/root/repo/src/hw/control_unit.cpp" "src/hw/CMakeFiles/ss_hw.dir/control_unit.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/control_unit.cpp.o.d"
  "/root/repo/src/hw/decision_block.cpp" "src/hw/CMakeFiles/ss_hw.dir/decision_block.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/decision_block.cpp.o.d"
  "/root/repo/src/hw/decision_block_rtl.cpp" "src/hw/CMakeFiles/ss_hw.dir/decision_block_rtl.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/decision_block_rtl.cpp.o.d"
  "/root/repo/src/hw/dma.cpp" "src/hw/CMakeFiles/ss_hw.dir/dma.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/dma.cpp.o.d"
  "/root/repo/src/hw/pci.cpp" "src/hw/CMakeFiles/ss_hw.dir/pci.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/pci.cpp.o.d"
  "/root/repo/src/hw/register_block.cpp" "src/hw/CMakeFiles/ss_hw.dir/register_block.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/register_block.cpp.o.d"
  "/root/repo/src/hw/scheduler_chip.cpp" "src/hw/CMakeFiles/ss_hw.dir/scheduler_chip.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/scheduler_chip.cpp.o.d"
  "/root/repo/src/hw/shuffle.cpp" "src/hw/CMakeFiles/ss_hw.dir/shuffle.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/shuffle.cpp.o.d"
  "/root/repo/src/hw/sram.cpp" "src/hw/CMakeFiles/ss_hw.dir/sram.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/sram.cpp.o.d"
  "/root/repo/src/hw/streaming_unit.cpp" "src/hw/CMakeFiles/ss_hw.dir/streaming_unit.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/streaming_unit.cpp.o.d"
  "/root/repo/src/hw/timing_model.cpp" "src/hw/CMakeFiles/ss_hw.dir/timing_model.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/timing_model.cpp.o.d"
  "/root/repo/src/hw/trace.cpp" "src/hw/CMakeFiles/ss_hw.dir/trace.cpp.o" "gcc" "src/hw/CMakeFiles/ss_hw.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/queueing/CMakeFiles/ss_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
