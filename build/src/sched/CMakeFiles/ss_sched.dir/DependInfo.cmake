
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/drr.cpp" "src/sched/CMakeFiles/ss_sched.dir/drr.cpp.o" "gcc" "src/sched/CMakeFiles/ss_sched.dir/drr.cpp.o.d"
  "/root/repo/src/sched/edf.cpp" "src/sched/CMakeFiles/ss_sched.dir/edf.cpp.o" "gcc" "src/sched/CMakeFiles/ss_sched.dir/edf.cpp.o.d"
  "/root/repo/src/sched/sfq.cpp" "src/sched/CMakeFiles/ss_sched.dir/sfq.cpp.o" "gcc" "src/sched/CMakeFiles/ss_sched.dir/sfq.cpp.o.d"
  "/root/repo/src/sched/timing_wheel.cpp" "src/sched/CMakeFiles/ss_sched.dir/timing_wheel.cpp.o" "gcc" "src/sched/CMakeFiles/ss_sched.dir/timing_wheel.cpp.o.d"
  "/root/repo/src/sched/virtual_clock.cpp" "src/sched/CMakeFiles/ss_sched.dir/virtual_clock.cpp.o" "gcc" "src/sched/CMakeFiles/ss_sched.dir/virtual_clock.cpp.o.d"
  "/root/repo/src/sched/wfq.cpp" "src/sched/CMakeFiles/ss_sched.dir/wfq.cpp.o" "gcc" "src/sched/CMakeFiles/ss_sched.dir/wfq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
