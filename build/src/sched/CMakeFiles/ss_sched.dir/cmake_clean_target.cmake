file(REMOVE_RECURSE
  "libss_sched.a"
)
