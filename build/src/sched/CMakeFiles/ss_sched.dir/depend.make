# Empty dependencies file for ss_sched.
# This may be replaced when dependencies are built.
