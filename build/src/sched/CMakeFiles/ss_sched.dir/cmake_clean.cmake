file(REMOVE_RECURSE
  "CMakeFiles/ss_sched.dir/drr.cpp.o"
  "CMakeFiles/ss_sched.dir/drr.cpp.o.d"
  "CMakeFiles/ss_sched.dir/edf.cpp.o"
  "CMakeFiles/ss_sched.dir/edf.cpp.o.d"
  "CMakeFiles/ss_sched.dir/sfq.cpp.o"
  "CMakeFiles/ss_sched.dir/sfq.cpp.o.d"
  "CMakeFiles/ss_sched.dir/timing_wheel.cpp.o"
  "CMakeFiles/ss_sched.dir/timing_wheel.cpp.o.d"
  "CMakeFiles/ss_sched.dir/virtual_clock.cpp.o"
  "CMakeFiles/ss_sched.dir/virtual_clock.cpp.o.d"
  "CMakeFiles/ss_sched.dir/wfq.cpp.o"
  "CMakeFiles/ss_sched.dir/wfq.cpp.o.d"
  "libss_sched.a"
  "libss_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
