file(REMOVE_RECURSE
  "CMakeFiles/ss_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/ss_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/ss_util.dir/csv.cpp.o"
  "CMakeFiles/ss_util.dir/csv.cpp.o.d"
  "CMakeFiles/ss_util.dir/histogram.cpp.o"
  "CMakeFiles/ss_util.dir/histogram.cpp.o.d"
  "CMakeFiles/ss_util.dir/stats.cpp.o"
  "CMakeFiles/ss_util.dir/stats.cpp.o.d"
  "libss_util.a"
  "libss_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
