# Empty compiler generated dependencies file for ss_dwcs.
# This may be replaced when dependencies are built.
