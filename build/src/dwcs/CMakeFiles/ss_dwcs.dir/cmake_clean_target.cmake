file(REMOVE_RECURSE
  "libss_dwcs.a"
)
