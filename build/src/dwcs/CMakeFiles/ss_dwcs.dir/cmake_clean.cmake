file(REMOVE_RECURSE
  "CMakeFiles/ss_dwcs.dir/analysis.cpp.o"
  "CMakeFiles/ss_dwcs.dir/analysis.cpp.o.d"
  "CMakeFiles/ss_dwcs.dir/modes.cpp.o"
  "CMakeFiles/ss_dwcs.dir/modes.cpp.o.d"
  "CMakeFiles/ss_dwcs.dir/ordering.cpp.o"
  "CMakeFiles/ss_dwcs.dir/ordering.cpp.o.d"
  "CMakeFiles/ss_dwcs.dir/reference_scheduler.cpp.o"
  "CMakeFiles/ss_dwcs.dir/reference_scheduler.cpp.o.d"
  "libss_dwcs.a"
  "libss_dwcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_dwcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
