
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dwcs/analysis.cpp" "src/dwcs/CMakeFiles/ss_dwcs.dir/analysis.cpp.o" "gcc" "src/dwcs/CMakeFiles/ss_dwcs.dir/analysis.cpp.o.d"
  "/root/repo/src/dwcs/modes.cpp" "src/dwcs/CMakeFiles/ss_dwcs.dir/modes.cpp.o" "gcc" "src/dwcs/CMakeFiles/ss_dwcs.dir/modes.cpp.o.d"
  "/root/repo/src/dwcs/ordering.cpp" "src/dwcs/CMakeFiles/ss_dwcs.dir/ordering.cpp.o" "gcc" "src/dwcs/CMakeFiles/ss_dwcs.dir/ordering.cpp.o.d"
  "/root/repo/src/dwcs/reference_scheduler.cpp" "src/dwcs/CMakeFiles/ss_dwcs.dir/reference_scheduler.cpp.o" "gcc" "src/dwcs/CMakeFiles/ss_dwcs.dir/reference_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/ss_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/ss_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
