# Empty dependencies file for ss_fabric.
# This may be replaced when dependencies are built.
