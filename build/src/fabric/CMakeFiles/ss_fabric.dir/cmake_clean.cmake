file(REMOVE_RECURSE
  "CMakeFiles/ss_fabric.dir/crossbar.cpp.o"
  "CMakeFiles/ss_fabric.dir/crossbar.cpp.o.d"
  "CMakeFiles/ss_fabric.dir/flow_table.cpp.o"
  "CMakeFiles/ss_fabric.dir/flow_table.cpp.o.d"
  "CMakeFiles/ss_fabric.dir/switch_system.cpp.o"
  "CMakeFiles/ss_fabric.dir/switch_system.cpp.o.d"
  "CMakeFiles/ss_fabric.dir/voq_switch.cpp.o"
  "CMakeFiles/ss_fabric.dir/voq_switch.cpp.o.d"
  "libss_fabric.a"
  "libss_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
