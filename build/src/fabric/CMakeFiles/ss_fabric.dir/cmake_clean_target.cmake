file(REMOVE_RECURSE
  "libss_fabric.a"
)
