
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/crossbar.cpp" "src/fabric/CMakeFiles/ss_fabric.dir/crossbar.cpp.o" "gcc" "src/fabric/CMakeFiles/ss_fabric.dir/crossbar.cpp.o.d"
  "/root/repo/src/fabric/flow_table.cpp" "src/fabric/CMakeFiles/ss_fabric.dir/flow_table.cpp.o" "gcc" "src/fabric/CMakeFiles/ss_fabric.dir/flow_table.cpp.o.d"
  "/root/repo/src/fabric/switch_system.cpp" "src/fabric/CMakeFiles/ss_fabric.dir/switch_system.cpp.o" "gcc" "src/fabric/CMakeFiles/ss_fabric.dir/switch_system.cpp.o.d"
  "/root/repo/src/fabric/voq_switch.cpp" "src/fabric/CMakeFiles/ss_fabric.dir/voq_switch.cpp.o" "gcc" "src/fabric/CMakeFiles/ss_fabric.dir/voq_switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/ss_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/ss_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
