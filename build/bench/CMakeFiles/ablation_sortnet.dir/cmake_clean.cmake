file(REMOVE_RECURSE
  "CMakeFiles/ablation_sortnet.dir/ablation_sortnet.cpp.o"
  "CMakeFiles/ablation_sortnet.dir/ablation_sortnet.cpp.o.d"
  "ablation_sortnet"
  "ablation_sortnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sortnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
