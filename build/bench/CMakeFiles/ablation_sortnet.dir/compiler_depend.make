# Empty compiler generated dependencies file for ablation_sortnet.
# This may be replaced when dependencies are built.
