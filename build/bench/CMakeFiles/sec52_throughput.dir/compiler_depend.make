# Empty compiler generated dependencies file for sec52_throughput.
# This may be replaced when dependencies are built.
