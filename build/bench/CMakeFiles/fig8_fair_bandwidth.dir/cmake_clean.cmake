file(REMOVE_RECURSE
  "CMakeFiles/fig8_fair_bandwidth.dir/fig8_fair_bandwidth.cpp.o"
  "CMakeFiles/fig8_fair_bandwidth.dir/fig8_fair_bandwidth.cpp.o.d"
  "fig8_fair_bandwidth"
  "fig8_fair_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_fair_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
