file(REMOVE_RECURSE
  "CMakeFiles/fig1b_complexity.dir/fig1b_complexity.cpp.o"
  "CMakeFiles/fig1b_complexity.dir/fig1b_complexity.cpp.o.d"
  "fig1b_complexity"
  "fig1b_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
