# Empty compiler generated dependencies file for fig1b_complexity.
# This may be replaced when dependencies are built.
