file(REMOVE_RECURSE
  "CMakeFiles/ablation_streaming.dir/ablation_streaming.cpp.o"
  "CMakeFiles/ablation_streaming.dir/ablation_streaming.cpp.o.d"
  "ablation_streaming"
  "ablation_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
