file(REMOVE_RECURSE
  "CMakeFiles/table3_block_vs_maxfind.dir/table3_block_vs_maxfind.cpp.o"
  "CMakeFiles/table3_block_vs_maxfind.dir/table3_block_vs_maxfind.cpp.o.d"
  "table3_block_vs_maxfind"
  "table3_block_vs_maxfind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_block_vs_maxfind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
