# Empty dependencies file for table3_block_vs_maxfind.
# This may be replaced when dependencies are built.
