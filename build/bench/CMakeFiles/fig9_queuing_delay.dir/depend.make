# Empty dependencies file for fig9_queuing_delay.
# This may be replaced when dependencies are built.
