file(REMOVE_RECURSE
  "CMakeFiles/fig10_aggregation.dir/fig10_aggregation.cpp.o"
  "CMakeFiles/fig10_aggregation.dir/fig10_aggregation.cpp.o.d"
  "fig10_aggregation"
  "fig10_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
