# Empty dependencies file for ablation_hwpq.
# This may be replaced when dependencies are built.
