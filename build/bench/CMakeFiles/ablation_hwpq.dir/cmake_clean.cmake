file(REMOVE_RECURSE
  "CMakeFiles/ablation_hwpq.dir/ablation_hwpq.cpp.o"
  "CMakeFiles/ablation_hwpq.dir/ablation_hwpq.cpp.o.d"
  "ablation_hwpq"
  "ablation_hwpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hwpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
