file(REMOVE_RECURSE
  "CMakeFiles/fig1a_framework.dir/fig1a_framework.cpp.o"
  "CMakeFiles/fig1a_framework.dir/fig1a_framework.cpp.o.d"
  "fig1a_framework"
  "fig1a_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
