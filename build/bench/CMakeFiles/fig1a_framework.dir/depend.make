# Empty dependencies file for fig1a_framework.
# This may be replaced when dependencies are built.
