# Empty dependencies file for fig7_area_clock.
# This may be replaced when dependencies are built.
