file(REMOVE_RECURSE
  "CMakeFiles/fig7_area_clock.dir/fig7_area_clock.cpp.o"
  "CMakeFiles/fig7_area_clock.dir/fig7_area_clock.cpp.o.d"
  "fig7_area_clock"
  "fig7_area_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_area_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
