file(REMOVE_RECURSE
  "CMakeFiles/fig6_timeline.dir/fig6_timeline.cpp.o"
  "CMakeFiles/fig6_timeline.dir/fig6_timeline.cpp.o.d"
  "fig6_timeline"
  "fig6_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
