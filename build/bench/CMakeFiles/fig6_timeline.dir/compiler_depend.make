# Empty compiler generated dependencies file for fig6_timeline.
# This may be replaced when dependencies are built.
