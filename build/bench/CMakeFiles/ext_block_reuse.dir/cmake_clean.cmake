file(REMOVE_RECURSE
  "CMakeFiles/ext_block_reuse.dir/ext_block_reuse.cpp.o"
  "CMakeFiles/ext_block_reuse.dir/ext_block_reuse.cpp.o.d"
  "ext_block_reuse"
  "ext_block_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_block_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
