# Empty dependencies file for ext_block_reuse.
# This may be replaced when dependencies are built.
