# Empty dependencies file for hwpq_test.
# This may be replaced when dependencies are built.
