file(REMOVE_RECURSE
  "CMakeFiles/hwpq_test.dir/hwpq_test.cpp.o"
  "CMakeFiles/hwpq_test.dir/hwpq_test.cpp.o.d"
  "hwpq_test"
  "hwpq_test.pdb"
  "hwpq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwpq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
