file(REMOVE_RECURSE
  "CMakeFiles/rtl_equivalence_test.dir/rtl_equivalence_test.cpp.o"
  "CMakeFiles/rtl_equivalence_test.dir/rtl_equivalence_test.cpp.o.d"
  "rtl_equivalence_test"
  "rtl_equivalence_test.pdb"
  "rtl_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
