file(REMOVE_RECURSE
  "CMakeFiles/register_block_test.dir/register_block_test.cpp.o"
  "CMakeFiles/register_block_test.dir/register_block_test.cpp.o.d"
  "register_block_test"
  "register_block_test.pdb"
  "register_block_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/register_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
