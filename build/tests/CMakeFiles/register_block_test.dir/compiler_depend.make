# Empty compiler generated dependencies file for register_block_test.
# This may be replaced when dependencies are built.
