file(REMOVE_RECURSE
  "CMakeFiles/fairness_property_test.dir/fairness_property_test.cpp.o"
  "CMakeFiles/fairness_property_test.dir/fairness_property_test.cpp.o.d"
  "fairness_property_test"
  "fairness_property_test.pdb"
  "fairness_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
