# Empty dependencies file for fairness_property_test.
# This may be replaced when dependencies are built.
