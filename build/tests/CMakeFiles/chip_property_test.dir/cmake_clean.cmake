file(REMOVE_RECURSE
  "CMakeFiles/chip_property_test.dir/chip_property_test.cpp.o"
  "CMakeFiles/chip_property_test.dir/chip_property_test.cpp.o.d"
  "chip_property_test"
  "chip_property_test.pdb"
  "chip_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
