file(REMOVE_RECURSE
  "CMakeFiles/dwcs_test.dir/dwcs_test.cpp.o"
  "CMakeFiles/dwcs_test.dir/dwcs_test.cpp.o.d"
  "dwcs_test"
  "dwcs_test.pdb"
  "dwcs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwcs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
