file(REMOVE_RECURSE
  "CMakeFiles/decision_block_test.dir/decision_block_test.cpp.o"
  "CMakeFiles/decision_block_test.dir/decision_block_test.cpp.o.d"
  "decision_block_test"
  "decision_block_test.pdb"
  "decision_block_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
