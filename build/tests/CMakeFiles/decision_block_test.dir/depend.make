# Empty dependencies file for decision_block_test.
# This may be replaced when dependencies are built.
