file(REMOVE_RECURSE
  "CMakeFiles/streaming_unit_test.dir/streaming_unit_test.cpp.o"
  "CMakeFiles/streaming_unit_test.dir/streaming_unit_test.cpp.o.d"
  "streaming_unit_test"
  "streaming_unit_test.pdb"
  "streaming_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
