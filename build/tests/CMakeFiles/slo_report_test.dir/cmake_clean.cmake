file(REMOVE_RECURSE
  "CMakeFiles/slo_report_test.dir/slo_report_test.cpp.o"
  "CMakeFiles/slo_report_test.dir/slo_report_test.cpp.o.d"
  "slo_report_test"
  "slo_report_test.pdb"
  "slo_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
