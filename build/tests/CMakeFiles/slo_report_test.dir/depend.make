# Empty dependencies file for slo_report_test.
# This may be replaced when dependencies are built.
