# Empty compiler generated dependencies file for area_timing_test.
# This may be replaced when dependencies are built.
