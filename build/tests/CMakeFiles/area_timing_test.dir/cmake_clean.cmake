file(REMOVE_RECURSE
  "CMakeFiles/area_timing_test.dir/area_timing_test.cpp.o"
  "CMakeFiles/area_timing_test.dir/area_timing_test.cpp.o.d"
  "area_timing_test"
  "area_timing_test.pdb"
  "area_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
