
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/timing_wheel_test.cpp" "tests/CMakeFiles/timing_wheel_test.dir/timing_wheel_test.cpp.o" "gcc" "tests/CMakeFiles/timing_wheel_test.dir/timing_wheel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dwcs/CMakeFiles/ss_dwcs.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/ss_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ss_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/hwpq/CMakeFiles/ss_hwpq.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/ss_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ss_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
