file(REMOVE_RECURSE
  "CMakeFiles/timing_wheel_test.dir/timing_wheel_test.cpp.o"
  "CMakeFiles/timing_wheel_test.dir/timing_wheel_test.cpp.o.d"
  "timing_wheel_test"
  "timing_wheel_test.pdb"
  "timing_wheel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_wheel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
