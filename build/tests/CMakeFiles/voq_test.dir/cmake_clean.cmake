file(REMOVE_RECURSE
  "CMakeFiles/voq_test.dir/voq_test.cpp.o"
  "CMakeFiles/voq_test.dir/voq_test.cpp.o.d"
  "voq_test"
  "voq_test.pdb"
  "voq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
