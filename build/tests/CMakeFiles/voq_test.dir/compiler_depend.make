# Empty compiler generated dependencies file for voq_test.
# This may be replaced when dependencies are built.
