file(REMOVE_RECURSE
  "CMakeFiles/scheduler_chip_test.dir/scheduler_chip_test.cpp.o"
  "CMakeFiles/scheduler_chip_test.dir/scheduler_chip_test.cpp.o.d"
  "scheduler_chip_test"
  "scheduler_chip_test.pdb"
  "scheduler_chip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_chip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
