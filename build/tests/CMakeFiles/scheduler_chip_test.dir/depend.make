# Empty dependencies file for scheduler_chip_test.
# This may be replaced when dependencies are built.
