# Empty dependencies file for memory_models_test.
# This may be replaced when dependencies are built.
