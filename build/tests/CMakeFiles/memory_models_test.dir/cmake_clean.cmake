file(REMOVE_RECURSE
  "CMakeFiles/memory_models_test.dir/memory_models_test.cpp.o"
  "CMakeFiles/memory_models_test.dir/memory_models_test.cpp.o.d"
  "memory_models_test"
  "memory_models_test.pdb"
  "memory_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
