# Empty dependencies file for control_unit_test.
# This may be replaced when dependencies are built.
