file(REMOVE_RECURSE
  "CMakeFiles/control_unit_test.dir/control_unit_test.cpp.o"
  "CMakeFiles/control_unit_test.dir/control_unit_test.cpp.o.d"
  "control_unit_test"
  "control_unit_test.pdb"
  "control_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
