add_test([=[GoldenTrace.TwentyFourCyclesFrozen]=]  /root/repo/build/tests/golden_trace_test [==[--gtest_filter=GoldenTrace.TwentyFourCyclesFrozen]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[GoldenTrace.TwentyFourCyclesFrozen]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  golden_trace_test_TESTS GoldenTrace.TwentyFourCyclesFrozen)
