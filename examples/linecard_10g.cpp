// linecard_10g — the switch line-card realization (Figure 2) sized for a
// 10 Gb/s port, compared against the Cisco GSR / Teracross data points of
// Section 5.2.
//
// Walks the Figure-1 framework: given the port's packet-time budget, find
// a feasible configuration (slots, BA vs WR, block scheduling), then run
// the cycle-level chip against a backlogged fabric and verify the
// sustained rate covers the port.
#include <cstdio>

#include "core/framework.hpp"
#include "core/linecard.hpp"
#include "util/sim_time.hpp"

int main() {
  using namespace ss;

  std::printf("== sizing a 10 Gb/s line card with the ShareStreams "
              "framework ==\n\n");
  const core::SolutionFramework fw;
  for (const std::uint64_t frame : {std::uint64_t{1500}, std::uint64_t{64}}) {
    const core::Application app{32, frame, 10.0};
    const core::Solution s = fw.solve(app);
    std::printf("%4llu-byte frames: need %.2f M decisions/s; %s with %u "
                "slots (%s%s) on %s achieves %.2f M frames/s -> %s",
                static_cast<unsigned long long>(frame),
                s.required_rate * 1e-6,
                s.feasible ? "FEASIBLE" : "infeasible",
                s.slots,
                s.arch == hw::ArchConfig::kBlockArchitecture ? "BA" : "WR",
                s.block_scheduling ? ", block scheduling" : "",
                s.device.c_str(), s.achievable_rate * 1e-6,
                s.feasible ? "meets the port\n" : "");
    if (!s.feasible) {
      std::printf("%.0f%% of packet-times would be missed (the QoS "
                  "degradation axis of Figure 1)\n", s.degradation * 100);
    }
  }

  // The paper's comparison: 32 per-flow queues with full DWCS on one
  // low-end Virtex-1000, vs 8 DRR queues (GSR line card) or 4 service
  // classes without per-flow queuing (Teracross).
  std::printf("\n== 32-queue DWCS line card, backlogged fabric ==\n");
  core::LinecardConfig cfg;
  cfg.chip.slots = 32;
  cfg.chip.cmp_mode = hw::ComparisonMode::kDwcsFull;
  cfg.chip.block_mode = true;  // block scheduling for 10G throughput
  cfg.chip.timing.pipelined_io = true;
  core::Linecard lc(cfg);
  for (unsigned i = 0; i < 32; ++i) {
    hw::SlotConfig sc;
    sc.mode = hw::SlotMode::kDwcs;
    sc.period = 32;
    sc.loss_num = 1;
    sc.loss_den = 8;
    sc.initial_deadline = hw::Deadline{i + 1};
    lc.load_slot(static_cast<hw::SlotId>(i), sc);
  }
  for (int round = 0; round < 4000; ++round) {
    for (unsigned i = 0; i < 32; ++i) {
      lc.on_fabric_arrival(static_cast<hw::SlotId>(i),
                           static_cast<std::uint16_t>(round));
    }
  }
  const auto rep = lc.run(128000);
  const double port_rate_1500 = 1e9 / packet_time_ns(1500, 10.0);
  std::printf("clock %.1f MHz | %llu frames in %llu hw cycles | %.2f M "
              "frames/s sustained\n",
              rep.clock_mhz, static_cast<unsigned long long>(rep.frames),
              static_cast<unsigned long long>(rep.hw_cycles),
              rep.packets_per_sec * 1e-6);
  std::printf("10G port needs %.3f M frames/s at 1500 B -> headroom %.1fx\n",
              port_rate_1500 * 1e-6, rep.packets_per_sec / port_rate_1500);
  std::printf("\ncontext: Cisco GSR line card = 8 DRR queues/port; "
              "Teracross = 4 service classes, no per-flow queuing; this "
              "card = 32 per-flow queues with window-constrained QoS.\n");
  return 0;
}
