// aggregation_demo — scaling past the FPGA's 32 stream-slots by binding
// streamlets to slots (the paper's second tradeoff).
//
// Scenario: a hosting box serving 300 tenant flows on one port.  Per-flow
// FPGA state is impossible (5-bit IDs, slice budget), so flows are graded
// into three service classes, each class mapped to one stream-slot with
// aggregate QoS, and the Stream processor round-robins inside the class.
// A fourth slot keeps one premium flow with genuine per-stream QoS.
#include <cstdio>
#include <memory>

#include "core/aggregation.hpp"
#include "core/endsystem.hpp"

int main() {
  using namespace ss;

  std::printf("== 300 tenant flows + 1 premium flow on 4 stream-slots ==\n\n");

  core::EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.link_gbps = 1.0;
  cfg.keep_series = false;
  core::Endsystem es(cfg);
  const char* names[4] = {"bronze x150", "silver x100", "gold x50",
                          "premium x1"};
  for (double w : {1.0, 2.0, 4.0, 1.0}) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = w;
    r.droppable = false;
    es.add_stream(r, std::make_unique<queueing::CbrGen>(200), 1500);
  }

  // Slots 0..2 aggregate the tenant classes; slot 3 is per-stream.
  core::AggregationManager agg;
  agg.bind_slot({{150, 1}});
  agg.bind_slot({{100, 1}});
  agg.bind_slot({{/*gold tenants*/ 40, 8}, {/*gold burst pool*/ 10, 1}});
  agg.bind_slot({{1, 1}});

  const auto rep = es.run(std::vector<std::uint64_t>{4000, 8000, 16000, 4000});
  const auto& mon = es.monitor();
  for (std::uint32_t slot = 0; slot < 4; ++slot) {
    for (std::uint64_t f = 0; f < mon.frames(slot); ++f) agg.on_grant(slot);
  }

  std::printf("%-14s %10s %10s %14s %18s\n", "class", "slot MBps",
              "streamlets", "per-flow MBps", "FPGA state");
  for (std::uint32_t slot = 0; slot < 4; ++slot) {
    const auto n = agg.streamlet_count(slot);
    std::printf("%-14s %10.1f %10u %14.3f %18s\n", names[slot],
                mon.mean_mbps(slot), n, mon.mean_mbps(slot) / n,
                "1 Register block");
  }

  std::printf("\ngold class detail (two weighted sets inside one slot):\n");
  const double gold = mon.mean_mbps(2);
  const auto g = agg.grants(2);
  std::uint64_t total = 0;
  for (auto v : g) total += v;
  std::printf("  tenants  (40 streamlets, weight 8): %.3f MBps each\n",
              gold * static_cast<double>(g[0]) / total);
  std::printf("  burst pool (10 streamlets, weight 1): %.3f MBps each\n",
              gold * static_cast<double>(g[40]) / total);

  std::printf("\nwhat aggregation bought: 301 flows served with 4 slots of "
              "FPGA state; per-flow state lives in host rings.\n");
  std::printf("what it cost: bronze/silver/gold tenants share their "
              "class's delay bound; only 'premium' has a per-stream one "
              "(the paper: \"stream-specific deadlines are not possible "
              "with aggregation\").\n");
  std::printf("\nframes: %llu, decision cycles: %llu\n",
              static_cast<unsigned long long>(rep.frames),
              static_cast<unsigned long long>(rep.decision_cycles));
  return 0;
}
