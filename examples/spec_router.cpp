// spec_router — the full operator path: a textual stream specification is
// parsed, run through admission control, loaded into the endsystem, and
// served; per-stream QoS is reported against the admission-time bounds.
//
// Usage:  spec_router [spec-file]
// Without an argument a built-in specification is used, so the example is
// runnable anywhere.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/admission.hpp"
#include "core/endsystem.hpp"
#include "core/spec_parser.hpp"

namespace {

constexpr const char* kDefaultSpec =
    "# spec_router default specification\n"
    "# one telemetry stream, one sensor stream with loss tolerance,\n"
    "# and two fair-share bulk classes\n"
    "edf    period=8 nodrop\n"
    "wc     period=8 loss=1/4\n"
    "fair   weight=1 nodrop\n"
    "fair   weight=3 nodrop\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace ss;

  std::string text = kDefaultSpec;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss_text;
    ss_text << in.rdbuf();
    text = ss_text.str();
  }

  // 1. Parse.
  const core::SpecParseResult parsed = core::parse_stream_specs(text);
  if (!parsed.ok) {
    for (const auto& e : parsed.errors) {
      std::fprintf(stderr, "spec:%zu: %s\n", e.line, e.message.c_str());
    }
    return 1;
  }
  std::printf("parsed %zu streams:\n", parsed.streams.size());
  for (const auto& r : parsed.streams) {
    std::printf("  %s\n", core::render_stream_spec(r).c_str());
  }

  // 2. Admission.
  const core::AdmissionReport adm =
      core::AdmissionController::analyze(parsed.streams);
  std::printf("\nadmission: %s (reserved %.3f of the link)\n",
              adm.admitted ? "ACCEPTED" : "REJECTED",
              adm.reserved_utilization);
  if (!adm.admitted) {
    std::printf("  %s\n", adm.reason.c_str());
    return 1;
  }
  for (std::size_t i = 0; i < adm.entries.size(); ++i) {
    const auto& e = adm.entries[i];
    if (e.best_effort) {
      std::printf("  S%zu: best effort\n", i + 1);
    } else {
      std::printf("  S%zu: guaranteed %.3f of link, delay bound %.0f "
                  "packet-times%s\n",
                  i + 1, e.guaranteed_share, e.delay_bound_packet_times,
                  e.droppable_slack > 0 ? " (+ droppable slack)" : "");
    }
  }

  // 3. Load and serve.
  core::EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kDwcsFull;
  cfg.keep_series = false;
  core::Endsystem es(cfg);
  for (const auto& r : parsed.streams) {
    es.add_stream(r, std::make_unique<queueing::CbrGen>(3000), 1500);
  }
  const auto rep = es.run(4000);
  std::printf("\nserved %llu frames (%llu dropped late) in %llu decision "
              "cycles\n",
              static_cast<unsigned long long>(rep.frames),
              static_cast<unsigned long long>(rep.dropped_late),
              static_cast<unsigned long long>(rep.decision_cycles));
  for (unsigned i = 0; i < parsed.streams.size(); ++i) {
    const auto& c = es.chip().slot(static_cast<hw::SlotId>(i)).counters();
    std::printf("  S%u: %llu served, %llu missed, %llu violations, "
                "%.1f MBps\n",
                i + 1, static_cast<unsigned long long>(c.serviced),
                static_cast<unsigned long long>(c.missed_deadlines),
                static_cast<unsigned long long>(c.violations),
                es.monitor().mean_mbps(i));
  }
  return 0;
}
