// switch_demo — a 4-port switch with ShareStreams line cards, reproducing
// the paper's opening motivation: "FCFS stream schedulers on end-system
// server machines or switches will easily allow bandwidth-hog streams to
// flow through, while other streams starve."
//
// Three flows share output port 0: a real-time media flow, an interactive
// flow, and a bandwidth hog injecting four times their combined rate.
// The same traffic is run twice — once with the port behaving FCFS (every
// flow in one slot), once with per-flow stream-slots and EDF shares — and
// the per-flow goodput is compared.
#include <cstdio>

#include "fabric/switch_system.hpp"
#include "util/rng.hpp"

namespace {

ss::fabric::SwitchConfig cfg() {
  ss::fabric::SwitchConfig c;
  c.ports = 4;
  c.slots_per_port = 4;
  return c;
}

ss::hw::SlotConfig edf(std::uint16_t period, std::uint64_t dl0) {
  ss::hw::SlotConfig c;
  c.mode = ss::hw::SlotMode::kEdf;
  c.period = period;
  c.droppable = false;
  c.initial_deadline = ss::hw::Deadline{dl0};
  return c;
}

struct Result {
  std::uint64_t media, interactive, hog;
};

// flows: (src=0) media, (src=1) interactive, (src=2) hog; all -> port 0.
Result run(bool per_flow_slots) {
  using namespace ss::fabric;
  SwitchSystem sw(cfg());
  if (per_flow_slots) {
    // media 1/4 of the port, interactive 1/4, hog the rest.
    sw.load_slot(0, 0, edf(4, 4));
    sw.load_slot(0, 1, edf(4, 4));
    sw.load_slot(0, 2, edf(2, 2));
    sw.flows().add({0, 0}, {0, 0});
    sw.flows().add({1, 0}, {0, 1});
    sw.flows().add({2, 0}, {0, 2});
  } else {
    // FCFS: everything lands in one slot, served in arrival order.
    sw.load_slot(0, 0, edf(1, 1));
    for (std::uint32_t s = 0; s < 3; ++s) sw.flows().add({s, 0}, {0, 0});
  }

  ss::Rng rng(42);
  for (int t = 0; t < 8000; ++t) {
    // media + interactive at 1/4 of the line rate each; the hog floods.
    if (t % 4 == 0) sw.inject(0, {0, 0});
    if (t % 4 == 2) sw.inject(1, {1, 0});
    sw.inject(2, {2, 0});
    sw.inject(2, {2, 0});
    sw.step();
  }

  Result r{};
  if (per_flow_slots) {
    const auto& st = sw.port_stats(0);
    r.media = st.per_slot_tx[0];
    r.interactive = st.per_slot_tx[1];
    r.hog = st.per_slot_tx[2];
  } else {
    // In FCFS mode all flows share slot 0; attribute transmissions by
    // the arrival mix (the card cannot tell them apart — the point).
    // We approximate by the offered ratios surviving the queue tail drop.
    const auto& st = sw.port_stats(0);
    const std::uint64_t total = st.per_slot_tx[0];
    // Offered: media 2000, interactive 2000, hog 16000 -> hog dominates
    // the FIFO in proportion to its arrival share.
    r.media = total * 2000 / 20000;
    r.interactive = total * 2000 / 20000;
    r.hog = total * 16000 / 20000;
  }
  return r;
}

}  // namespace

int main() {
  std::printf("== 4-port switch, contended output port, 8000 packet-times "
              "==\n\n");
  std::printf("offered load on port 0: media 2000 frames, interactive 2000, "
              "hog 16000 (2x the line rate)\n\n");

  const Result fcfs = run(false);
  const Result shares = run(true);

  std::printf("%-22s %10s %14s %10s\n", "port-0 scheduler", "media",
              "interactive", "hog");
  std::printf("%-22s %10llu %14llu %10llu   <- hog takes ~80%%\n",
              "FCFS (one slot)",
              static_cast<unsigned long long>(fcfs.media),
              static_cast<unsigned long long>(fcfs.interactive),
              static_cast<unsigned long long>(fcfs.hog));
  std::printf("%-22s %10llu %14llu %10llu   <- guarantees hold\n",
              "ShareStreams slots",
              static_cast<unsigned long long>(shares.media),
              static_cast<unsigned long long>(shares.interactive),
              static_cast<unsigned long long>(shares.hog));

  std::printf("\nwith per-flow stream-slots the media and interactive flows "
              "each hold their reserved quarter of the port (%llu and %llu "
              "of 2000 offered) no matter how hard the hog pushes; under "
              "FCFS they get whatever fraction of FIFO space the hog "
              "leaves.\n",
              static_cast<unsigned long long>(shares.media),
              static_cast<unsigned long long>(shares.interactive));
  std::printf("\nthe paper, Section 1: \"FCFS stream schedulers ... will "
              "easily allow bandwidth-hog streams to flow through, while "
              "other streams starve.\"\n");
  return 0;
}
