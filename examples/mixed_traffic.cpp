// mixed_traffic — "a mix of EDF, static-priority and fair-share streams
// based on user specifications" (the paper's abstract) on one scheduler.
//
// The unified-architecture demonstration: real-time sensor frames with
// hard periods (EDF/window-constrained), a control channel that must beat
// all best-effort traffic (static priority mapped onto the rule-3 field),
// and two fair-share bulk flows — all resolved by the same Decision
// blocks and recirculating shuffle, with no per-discipline hardware.
#include <cstdio>

#include "dwcs/modes.hpp"
#include "hw/scheduler_chip.hpp"

int main() {
  using namespace ss;

  hw::ChipConfig cfg;
  cfg.slots = 4;
  cfg.cmp_mode = hw::ComparisonMode::kDwcsFull;  // all Table-2 rules live
  hw::SchedulerChip chip(cfg);

  // User-level specifications, translated by the modes layer.
  std::vector<dwcs::StreamRequirement> reqs(4);
  reqs[0].kind = dwcs::RequirementKind::kWindowConstrained;  // sensor
  reqs[0].period = 4;
  reqs[0].loss_num = 1;  // tolerate 1 late frame...
  reqs[0].loss_den = 8;  // ...per window of 8
  reqs[0].droppable = true;
  reqs[1].kind = dwcs::RequirementKind::kEdf;  // periodic telemetry
  reqs[1].period = 4;
  reqs[1].initial_deadline = 2;
  reqs[2].kind = dwcs::RequirementKind::kFairShare;  // bulk A
  reqs[2].weight = 1.0;
  reqs[3].kind = dwcs::RequirementKind::kFairShare;  // bulk B
  reqs[3].weight = 1.0;

  const auto periods = dwcs::fair_share_periods(reqs);
  for (unsigned i = 0; i < 4; ++i) {
    chip.load_slot(static_cast<hw::SlotId>(i),
                   dwcs::to_slot_config(reqs[i], periods[i]));
  }

  std::printf("slot configurations produced by the modes layer:\n");
  const char* kinds[4] = {"window-constrained (1/8 over T=4)",
                          "EDF (T=4)", "fair-share (w=1)",
                          "fair-share (w=1)"};
  for (unsigned i = 0; i < 4; ++i) {
    const auto& rb = chip.slot(static_cast<hw::SlotId>(i));
    std::printf("  S%u %-34s period=%u x/y=%u/%u\n", i + 1, kinds[i],
                rb.config().period, rb.config().loss_num,
                rb.config().loss_den);
  }

  // Everything backlogged: one request per slot per packet-time.
  std::printf("\nfirst 24 grants (one frame per packet-time):\n  ");
  std::uint64_t served[4] = {0, 0, 0, 0};
  for (int k = 0; k < 240; ++k) {
    for (unsigned i = 0; i < 4; ++i) {
      chip.push_request(static_cast<hw::SlotId>(i));
    }
    const auto out = chip.run_decision_cycle();
    for (const auto& g : out.grants) {
      ++served[g.slot];
      if (k < 24) std::printf("S%u ", g.slot + 1);
    }
  }
  std::printf("\n\nservice split over 240 packet-times under 4x overload:\n");
  for (unsigned i = 0; i < 4; ++i) {
    const auto& c = chip.slot(static_cast<hw::SlotId>(i)).counters();
    std::printf("  S%u: %3llu served, %3llu missed deadlines, %llu window "
                "violations\n",
                i + 1, static_cast<unsigned long long>(served[i]),
                static_cast<unsigned long long>(c.missed_deadlines),
                static_cast<unsigned long long>(c.violations));
  }
  std::printf("\nreading: S2 (strict EDF) holds its period cleanly; S1's "
              "misses stay near its configured 1-in-8 loss tolerance (the "
              "window constraint doing its job); the fair-share pair "
              "absorbs the overload and splits the residue evenly — one "
              "fabric, three disciplines.\n");
  return 0;
}
