// media_server — the paper's motivating workload (Section 1: clusters
// serving "a mix of best-effort web-traffic, real-time media streams"):
// two MPEG video streams with loss-tolerant window constraints, a
// telemetry stream with a hard period, and a best-effort bulk stream,
// served by the endsystem realization and judged by the SLO layer.
#include <cstdio>
#include <memory>

#include "core/admission.hpp"
#include "core/endsystem.hpp"
#include "core/slo_report.hpp"

int main() {
  using namespace ss;

  std::printf("== media server: 2x MPEG + telemetry + bulk on 1 GbE ==\n\n");

  // Requirements.  MPEG at 30 fps: one (large) frame per 33 ms; on a
  // 1 Gb link one packet-time is 12 us, so the request period is ~2750
  // packet-times.  One late frame in eight is tolerable (a B-frame skip).
  std::vector<dwcs::StreamRequirement> reqs(4);
  reqs[0].kind = dwcs::RequirementKind::kWindowConstrained;
  reqs[0].period = 2750;
  reqs[0].loss_num = 1;
  reqs[0].loss_den = 8;
  reqs[0].initial_deadline = 2750;
  reqs[1] = reqs[0];
  reqs[2].kind = dwcs::RequirementKind::kEdf;  // telemetry: hard period
  reqs[2].period = 100;
  reqs[2].initial_deadline = 100;
  reqs[2].droppable = false;
  reqs[3].kind = dwcs::RequirementKind::kFairShare;  // bulk: the residue
  reqs[3].weight = 1.0;
  reqs[3].droppable = false;

  const auto adm = core::AdmissionController::analyze(reqs);
  std::printf("admission: %s, reserved %.4f of the link\n",
              adm.admitted ? "ACCEPTED" : "REJECTED",
              adm.reserved_utilization);

  core::EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kDwcsFull;
  core::Endsystem es(cfg);
  queueing::MpegGen::Gop gop;  // ~16 kB mean frames
  es.add_stream(reqs[0],
                std::make_unique<queueing::MpegGen>(33'000'000, gop, 11),
                1500);
  es.add_stream(reqs[1],
                std::make_unique<queueing::MpegGen>(33'000'000, gop, 22),
                1500);
  const double pt_ns = packet_time_ns(1500, cfg.link_gbps);
  es.add_stream(reqs[2],
                std::make_unique<queueing::CbrGen>(
                    static_cast<std::uint64_t>(pt_ns * 100)),
                1500);
  es.add_stream(reqs[3],
                std::make_unique<queueing::CbrGen>(
                    static_cast<std::uint64_t>(pt_ns * 2)),
                1500);

  // ~6.6 s of video, paced telemetry, steady bulk.
  const auto rep =
      es.run(std::vector<std::uint64_t>{200, 200, 4000, 40000});
  const auto& mon = es.monitor();

  std::printf("\n%-12s %9s %11s %13s %12s\n", "stream", "frames", "MBps",
              "p99 delay us", "max us");
  const char* names[4] = {"mpeg-a", "mpeg-b", "telemetry", "bulk"};
  for (unsigned i = 0; i < 4; ++i) {
    std::printf("%-12s %9llu %11.2f %13.0f %12.0f\n", names[i],
                static_cast<unsigned long long>(mon.frames(i)),
                mon.mean_mbps(i), mon.delay_percentile_us(i, 99.0),
                mon.max_delay_us(i));
  }
  std::printf("\nrun: %llu frames, %llu dropped late, link time %.2f s\n",
              static_cast<unsigned long long>(rep.frames),
              static_cast<unsigned long long>(rep.dropped_late),
              static_cast<double>(rep.link_ns) * 1e-9);

  // Naive SLO check: delay bounds stated in 1500-byte packet-times.
  const core::SloEvaluator naive(cfg.link_gbps * 1000.0 / 8.0,
                                 pt_ns / 1000.0);
  const auto slo_naive = naive.evaluate(adm, mon, es.chip());
  std::printf("\n-- SLO against 1500 B packet-times (naive) --\n%s",
              slo_naive.render().c_str());

  // The lesson: a 60 kB I-frame occupies ~44 packet-times on the wire, so
  // with mixed granularity every delay bound must be provisioned against
  // the LARGEST frame that can be serializing ahead (the paper's
  // granularity axis again).  Re-evaluating with jumbo-aware packet-times:
  const double jumbo_pt_us =
      packet_time_ns(static_cast<std::uint64_t>(gop.i_bytes * 1.1),
                     cfg.link_gbps) /
      1000.0;
  const core::SloEvaluator jumbo(cfg.link_gbps * 1000.0 / 8.0, jumbo_pt_us);
  const auto slo_jumbo = jumbo.evaluate(adm, mon, es.chip());
  std::printf("\n-- SLO with bounds provisioned for the largest frame "
              "(%.0f us packet-time) --\n%s",
              jumbo_pt_us, slo_jumbo.render().c_str());
  std::printf("\nnote the shape: MPEG streams move ~10x more bytes per "
              "frame than the 1500 B flows yet need only a "
              "1-in-2750-packet-time decision rate (granularity, Figure "
              "1); the bulk stream soaks up the residue; and delay bounds "
              "for mixed-granularity links must budget one largest-frame "
              "serialization — visible above as the naive bulk bound "
              "failing while the jumbo-aware one holds.\n");
  return 0;
}
