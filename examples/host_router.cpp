// host_router — the full ShareStreams endsystem / host-based router
// (Figure 3 of the paper): Queue Manager rings on the host, the FPGA
// scheduler simulation behind the PCI model, a Transmission Engine and a
// gigabit link, serving a mixed workload with fair shares.
//
// Scenario: a media server pushing four streams over one gigabit port —
// two standard-definition flows, one HD flow, one bulk-transfer flow with
// double the HD share — and reporting per-stream bandwidth, delay and the
// throughput cost of the PCI exchange.
#include <cstdio>
#include <memory>

#include "core/endsystem.hpp"
#include "util/sim_time.hpp"

int main() {
  using namespace ss;

  core::EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.link_gbps = 1.0;        // gigabit NIC
  cfg.pci_batch = 32;         // batch arrival-time pushes
  cfg.bw_window_ns = 5'000'000;
  core::Endsystem es(cfg);

  struct Flow {
    const char* name;
    double weight;
    std::uint32_t bytes;
  };
  const Flow flows[4] = {{"sd-video-a", 1.0, 1316},
                         {"sd-video-b", 1.0, 1316},
                         {"hd-video", 2.0, 1500},
                         {"bulk-sync", 4.0, 1500}};
  // Producers pace themselves at their allocated rate (a media server's
  // encoders emit at the stream rate); the scheduler then only has to
  // resolve transient contention, so queues stay shallow.
  const double ptime_ns = packet_time_ns(1500, cfg.link_gbps);
  const double wsum = 1.0 + 1.0 + 2.0 + 4.0;
  for (const Flow& f : flows) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = f.weight;
    r.droppable = false;
    const auto interval =
        static_cast<std::uint64_t>(ptime_ns * wsum / f.weight);
    es.add_stream(r, std::make_unique<queueing::CbrGen>(interval), f.bytes);
  }
  std::printf("admitted 4 flows; utilization = %.3f (1.0 = link fully "
              "allocated)\n\n",
              es.utilization());

  // Weight-proportional frame counts keep all flows contended end-to-end.
  const auto rep = es.run(std::vector<std::uint64_t>{4000, 4000, 8000, 16000});
  const auto& mon = es.monitor();

  std::printf("%-12s %10s %12s %12s %10s\n", "flow", "frames", "MBps",
              "delay(us)", "jitter(us)");
  for (unsigned i = 0; i < 4; ++i) {
    std::printf("%-12s %10llu %12.1f %12.1f %10.1f\n", flows[i].name,
                static_cast<unsigned long long>(mon.frames(i)),
                mon.mean_mbps(i), mon.mean_delay_us(i),
                mon.mean_jitter_us(i));
  }
  std::printf("\nrun: %llu frames in %.3f s of link time "
              "(%llu scheduler decision cycles)\n",
              static_cast<unsigned long long>(rep.frames),
              static_cast<double>(rep.link_ns) * 1e-9,
              static_cast<unsigned long long>(rep.decision_cycles));
  std::printf("host drain loop: %.3e pps excluding PCI, %.3e pps with the "
              "modeled PCI PIO exchange (%.0f%% penalty)\n",
              rep.pps_excl_pci, rep.pps_incl_pci,
              (1.0 - rep.pps_incl_pci / rep.pps_excl_pci) * 100.0);
  std::printf("\nthe weights carried through: bulk-sync got %.1fx the "
              "sd-video bandwidth (configured 4x in frames; the extra "
              "%.0f%% is bulk-sync's larger 1500 B vs 1316 B frames — "
              "grants are per-frame, as in the hardware)\n",
              mon.mean_mbps(3) / mon.mean_mbps(0),
              (1500.0 / 1316.0 - 1.0) * 100.0);
  return 0;
}
