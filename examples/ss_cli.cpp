// ss_cli — a command-line front end over the public API.
//
//   ss_cli solve <streams> <frame_bytes> <gbps>   Figure-1 framework query
//   ss_cli admit <spec-file|->                    parse + admission verdict
//   ss_cli area  <slots>                          Virtex-I/II area & clock
//   ss_cli trace                                  a traced 8-cycle DWCS run
//   ss_cli run <streams> <frames> [--metrics-json F] [--trace-out F]
//              [--audit-out F] [--profile-out F] [--sample-every N]
//                                                 instrumented pipeline run
//   ss_cli audit <streams> <frames> [--out F] [--fault-seed S]
//                [--sample-every N] [--watchdog]  black-box / provenance dump
//
// Run without arguments for a demonstration of the subcommands.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/endsystem.hpp"
#include "core/framework.hpp"
#include "core/spec_parser.hpp"
#include "hw/area_model.hpp"
#include "hw/scheduler_chip.hpp"
#include "hw/trace.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/report.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/watchdog.hpp"
#include "util/sim_time.hpp"

namespace {

int cmd_solve(unsigned streams, std::uint64_t frame, double gbps) {
  const ss::core::SolutionFramework fw;
  const ss::core::Solution s = fw.solve({streams, frame, gbps});
  std::printf("application: %u streams, %llu B frames, %.1f Gb/s\n", streams,
              static_cast<unsigned long long>(frame), gbps);
  std::printf("required:    %.3e decisions/s\n", s.required_rate);
  std::printf("solution:    %s%s, %u slots, %u stream(s)/slot, %s\n",
              s.arch == ss::hw::ArchConfig::kBlockArchitecture ? "BA" : "WR",
              s.block_scheduling ? "+block-scheduling" : "", s.slots,
              s.streams_per_slot, s.device.c_str());
  std::printf("achievable:  %.3e frames/s -> %s", s.achievable_rate,
              s.feasible ? "FEASIBLE\n" : "infeasible");
  if (!s.feasible) {
    std::printf(" (%.1f%% of packet-times missed)\n", s.degradation * 100);
  }
  return s.feasible ? 0 : 2;
}

int cmd_admit(const std::string& path) {
  std::string text;
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  const auto parsed = ss::core::parse_stream_specs(text);
  if (!parsed.ok) {
    for (const auto& e : parsed.errors) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), e.line,
                   e.message.c_str());
    }
    return 1;
  }
  const auto rep = ss::core::AdmissionController::analyze(parsed.streams);
  std::printf("%zu streams, reserved utilization %.3f -> %s\n",
              parsed.streams.size(), rep.reserved_utilization,
              rep.admitted ? "ADMITTED" : "REJECTED");
  for (std::size_t i = 0; i < rep.entries.size(); ++i) {
    const auto& e = rep.entries[i];
    std::printf("  [%zu] %-40s share=%.3f delay<=%.0f pt%s\n", i + 1,
                ss::core::render_stream_spec(parsed.streams[i]).c_str(),
                e.guaranteed_share, e.delay_bound_packet_times,
                e.best_effort ? " (best effort)" : "");
  }
  if (!rep.admitted) std::printf("  reason: %s\n", rep.reason.c_str());
  return rep.admitted ? 0 : 2;
}

int cmd_area(unsigned slots) {
  for (const auto fam :
       {ss::hw::FpgaFamily::kVirtexI, ss::hw::FpgaFamily::kVirtexII}) {
    const ss::hw::AreaModel m(fam);
    for (const auto cfg : {ss::hw::ArchConfig::kBlockArchitecture,
                           ss::hw::ArchConfig::kWinnerRouting}) {
      const auto b = m.area(slots, cfg);
      const auto* dev = m.smallest_fit(slots, cfg);
      std::printf("%s %s: %u slices (ctl %u + reg %u + dec %u + route %u), "
                  "%.1f MHz, fits %s\n",
                  fam == ss::hw::FpgaFamily::kVirtexI ? "Virtex-I " : "Virtex-II",
                  cfg == ss::hw::ArchConfig::kBlockArchitecture ? "BA" : "WR",
                  b.total(), b.control_slices, b.register_slices,
                  b.decision_slices, b.routing_slices,
                  m.clock_mhz(slots, cfg),
                  dev ? dev->name.c_str() : "(nothing)");
    }
  }
  return 0;
}

int cmd_trace() {
  ss::hw::ChipConfig cfg;
  cfg.slots = 4;
  cfg.cmp_mode = ss::hw::ComparisonMode::kDwcsFull;
  ss::hw::SchedulerChip chip(cfg);
  for (unsigned i = 0; i < 4; ++i) {
    ss::hw::SlotConfig sc;
    sc.mode = ss::hw::SlotMode::kDwcs;
    sc.period = 2 + i;
    sc.loss_num = 1;
    sc.loss_den = 4;
    sc.initial_deadline = ss::hw::Deadline{i + 1};
    chip.load_slot(static_cast<ss::hw::SlotId>(i), sc);
  }
  ss::hw::Tracer tracer;
  chip.attach_tracer(&tracer);
  for (int k = 0; k < 8; ++k) {
    for (unsigned i = 0; i < 4; ++i) {
      if ((k + i) % 2 == 0) chip.push_request(static_cast<ss::hw::SlotId>(i));
    }
    chip.run_decision_cycle();
  }
  std::fputs(tracer.render_all().c_str(), stdout);
  return 0;
}

/// `run`: the full endsystem pipeline with live telemetry — equal-weight
/// fair-share flows, per-layer metrics to a single-line JSON snapshot and
/// frame-lifecycle events to a Perfetto-loadable Chrome trace.
int cmd_run(unsigned streams, std::uint64_t frames,
            const std::string& metrics_path, const std::string& trace_path,
            const std::string& audit_path, const std::string& profile_path,
            const std::string& timeseries_path, unsigned sample_every) {
  using namespace ss;
  if (streams < 2 || streams > 32 || (streams & (streams - 1)) != 0) {
    std::fprintf(stderr, "run: streams must be a power of two in 2..32\n");
    return 1;
  }

  telemetry::MetricsRegistry registry;
  telemetry::FrameTrace frame_trace;
  telemetry::Profiler profiler;
  telemetry::AuditSession audit(streams);
  audit.set_dump_path(audit_path);
  audit.set_sampling(sample_every);
  core::EndsystemConfig cfg;
  cfg.chip.slots = streams;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.keep_series = false;
  cfg.delay_histogram = true;  // streaming percentiles, O(1) memory
  cfg.metrics = &registry;
  cfg.frame_trace = &frame_trace;
  if (!audit_path.empty()) cfg.audit = &audit;
  if (!profile_path.empty()) cfg.profiler = &profiler;
  core::Endsystem es(cfg);

  const double ptime_ns = packet_time_ns(1500, cfg.link_gbps);
  for (unsigned i = 0; i < streams; ++i) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = 1.0;
    es.add_stream(r,
                  std::make_unique<queueing::CbrGen>(static_cast<std::uint64_t>(
                      ptime_ns * static_cast<double>(streams))),
                  1500);
  }
  telemetry::TimeSeries timeseries(registry);
  if (!timeseries_path.empty()) timeseries.start();
  const auto rep = es.run(frames);
  if (!timeseries_path.empty()) timeseries.stop();  // closing-window sample

  std::printf("run: %u streams x %llu frames -> %llu transmitted in %llu "
              "decision cycles (%.3e pps excl PCI)\n",
              streams, static_cast<unsigned long long>(frames),
              static_cast<unsigned long long>(rep.frames),
              static_cast<unsigned long long>(rep.decision_cycles),
              rep.pps_excl_pci);
  std::printf("stream 0: p50=%.1f us p99=%.1f us (streaming estimate)\n",
              es.monitor().delay_percentile_est_us(0, 50.0),
              es.monitor().delay_percentile_est_us(0, 99.0));
  if (!metrics_path.empty()) {
    std::ofstream f(metrics_path);
    if (!f) {
      std::fprintf(stderr, "run: cannot open %s\n", metrics_path.c_str());
      return 1;
    }
    f << registry.to_json() << '\n';
    std::printf("metrics snapshot (%zu metrics) -> %s\n", registry.size(),
                metrics_path.c_str());
  } else {
    std::printf("%s\n", registry.to_json().c_str());
  }
  if (!trace_path.empty()) {
    if (!frame_trace.write_chrome_json(trace_path)) {
      std::fprintf(stderr, "run: cannot open %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("frame-lifecycle trace (%llu events) -> %s\n",
                static_cast<unsigned long long>(frame_trace.recorded()),
                trace_path.c_str());
  }
  if (!profile_path.empty()) {
    if (!profiler.write_json(profile_path)) {
      std::fprintf(stderr, "run: cannot open %s\n", profile_path.c_str());
      return 1;
    }
    std::printf("stage profile (ss-profile-v1, %s clock) -> %s\n",
                telemetry::Profiler::clock_name(), profile_path.c_str());
  }
  if (!timeseries_path.empty()) {
    if (!timeseries.write_json(timeseries_path)) {
      std::fprintf(stderr, "run: cannot open %s\n", timeseries_path.c_str());
      return 1;
    }
    std::printf("time series (ss-timeseries-v1, %zu intervals) -> %s\n",
                timeseries.size(), timeseries_path.c_str());
  }
  if (!audit_path.empty()) {
    if (!audit.dumped()) audit.dump("on_demand");
    std::printf("audit dump (%llu comparisons, 1-in-%u sampled, ring of "
                "%zu) -> %s\n",
                static_cast<unsigned long long>(audit.audit().comparisons()),
                audit.sampler().every(), audit.recorder().size(),
                audit_path.c_str());
  }
  return 0;
}

/// `audit`: the black box on demand — run the pipeline with a decision-
/// audit session attached (optionally under a seeded fault plane, with the
/// anomaly watchdog watching the registry) and emit the single-line
/// ss-audit-v2 document to stdout or a file.
int cmd_audit(unsigned streams, std::uint64_t frames,
              const std::string& out_path, std::uint64_t fault_seed,
              unsigned sample_every, bool watchdog_on, bool overload) {
  using namespace ss;
  if (streams < 2 || streams > 32 || (streams & (streams - 1)) != 0) {
    std::fprintf(stderr, "audit: streams must be a power of two in 2..32\n");
    return 1;
  }
  telemetry::MetricsRegistry registry;
  telemetry::AuditSession audit(streams);
  audit.set_dump_path(out_path);
  audit.set_sampling(sample_every);
  core::EndsystemConfig cfg;
  cfg.chip.slots = streams;
  cfg.chip.cmp_mode = hw::ComparisonMode::kDwcsFull;
  cfg.keep_series = false;
  cfg.audit = &audit;
  // The watchdog reads rolling metric windows, so it drags the registry in.
  if (watchdog_on) cfg.metrics = &registry;
  if (fault_seed != 0) {
    cfg.faults.seed = fault_seed;
    cfg.faults.pci_fault_per64k = 700;
    cfg.faults.sram_fault_per64k = 700;
    cfg.faults.chip_fault_per64k = 700;
  }
  core::Endsystem es(cfg);
  const double ptime_ns = packet_time_ns(1500, cfg.link_gbps);
  for (unsigned i = 0; i < streams; ++i) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kWindowConstrained;
    // --overload: every stream demands twice its fair share, so window
    // violations (and their burn attribution) are guaranteed — the
    // deterministic way to trip the watchdog's burn_rate_spike rule.
    r.period = overload ? streams / 2 : streams;
    r.loss_num = 1;
    r.loss_den = 4;
    r.initial_deadline = i + 1;
    const double interval =
        ptime_ns * static_cast<double>(overload ? streams / 2 : streams);
    es.add_stream(
        r, std::make_unique<queueing::CbrGen>(
               static_cast<std::uint64_t>(interval)),
        1500);
  }
  telemetry::Watchdog watchdog(registry, &audit);
  if (watchdog_on) watchdog.start();
  const auto rep = es.run(frames);
  if (watchdog_on) watchdog.stop();  // final rule evaluation before join
  std::printf("audit: %u streams x %llu frames, %llu decisions, "
              "%llu comparisons, %llu faults%s\n",
              streams, static_cast<unsigned long long>(frames),
              static_cast<unsigned long long>(rep.decision_cycles),
              static_cast<unsigned long long>(audit.audit().comparisons()),
              static_cast<unsigned long long>(audit.faults_total()),
              rep.failed_over ? " (FAILED OVER)" : "");
  if (watchdog_on) {
    std::printf("watchdog: %llu polls, %llu firings%s%s\n",
                static_cast<unsigned long long>(watchdog.polls()),
                static_cast<unsigned long long>(watchdog.fired()),
                watchdog.fired() > 0 ? ", last rule " : "",
                watchdog.fired() > 0 ? watchdog.last_rule().c_str() : "");
  }
  if (out_path.empty()) {
    std::printf("%s\n", audit.to_json("on_demand").c_str());
  } else {
    if (!audit.dumped()) audit.dump("on_demand");
    std::printf("ss-audit-v2 (cause \"%s\") -> %s\n",
                audit.last_cause().c_str(), out_path.c_str());
  }
  return 0;
}

/// `report`: merge a run's export documents into one ss-report-v1 page.
int cmd_report(const ss::telemetry::ReportInputs& in,
               const std::string& json_out) {
  const ss::telemetry::Report rep = ss::telemetry::build_report(in);
  if (!rep.any_input) {
    std::fprintf(stderr,
                 "report: no readable input documents (check paths and "
                 "schemas)\n");
    return 2;
  }
  if (!json_out.empty()) {
    std::ofstream f(json_out);
    if (!f) {
      std::fprintf(stderr, "report: cannot open %s\n", json_out.c_str());
      return 1;
    }
    f << rep.json << '\n';
    std::printf("%s", rep.text.c_str());
    std::printf("\nss-report-v1 -> %s\n", json_out.c_str());
  } else {
    std::printf("%s", rep.text.c_str());
  }
  return 0;
}

/// `benchdiff`: the perf-regression keeper — exit 1 when the candidate
/// artifact regressed beyond tolerance, 2 when the pair is not
/// comparable, 0 when clean.
int cmd_benchdiff(const std::string& baseline, const std::string& candidate,
                  const ss::telemetry::BenchDiffOptions& opts) {
  const auto res = ss::telemetry::bench_diff(baseline, candidate, opts);
  std::printf("%s", res.text.c_str());
  if (!res.comparable) return 2;
  return res.regressions > 0 ? 1 : 0;
}

void usage() {
  std::puts("usage: ss_cli solve <streams> <frame_bytes> <gbps>");
  std::puts("       ss_cli admit <spec-file|->");
  std::puts("       ss_cli area <slots>");
  std::puts("       ss_cli trace");
  std::puts("       ss_cli run <streams> <frames> [--metrics-json FILE]");
  std::puts("                  [--trace-out FILE] [--audit-out FILE]");
  std::puts("                  [--profile-out FILE] [--timeseries-out FILE]");
  std::puts("                  [--sample-every N]");
  std::puts("       ss_cli audit <streams> <frames> [--out FILE]");
  std::puts("                  [--fault-seed S] [--sample-every N]");
  std::puts("                  [--watchdog] [--overload]");
  std::puts("       ss_cli report [--metrics FILE] [--audit FILE]");
  std::puts("                  [--profile FILE] [--timeseries FILE]");
  std::puts("                  [--json-out FILE]");
  std::puts("       ss_cli benchdiff <baseline.json> <candidate.json>");
  std::puts("                  [--rate-tol PCT] [--cycles-tol PCT]");
  std::puts("                  [--absolute]");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    // Demonstration mode: one of everything.
    std::puts("== ss_cli demo (run with a subcommand for real use) ==\n");
    std::puts("--- solve 32 1500 10.0 ---");
    cmd_solve(32, 1500, 10.0);
    std::puts("\n--- area 16 ---");
    cmd_area(16);
    std::puts("\n--- trace ---");
    cmd_trace();
    usage();
    return 0;
  }
  const std::string cmd = argv[1];
  if (cmd == "solve" && argc == 5) {
    return cmd_solve(static_cast<unsigned>(std::atoi(argv[2])),
                     static_cast<std::uint64_t>(std::atoll(argv[3])),
                     std::atof(argv[4]));
  }
  if (cmd == "admit" && argc == 3) return cmd_admit(argv[2]);
  if (cmd == "area" && argc == 3) {
    return cmd_area(static_cast<unsigned>(std::atoi(argv[2])));
  }
  if (cmd == "trace") return cmd_trace();
  if (cmd == "run" && argc >= 4) {
    std::string metrics_path, trace_path, audit_path, profile_path;
    std::string timeseries_path;
    unsigned sample_every = 64;
    for (int i = 4; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--metrics-json" && i + 1 < argc) {
        metrics_path = argv[++i];
      } else if (a == "--trace-out" && i + 1 < argc) {
        trace_path = argv[++i];
      } else if (a == "--audit-out" && i + 1 < argc) {
        audit_path = argv[++i];
      } else if (a == "--profile-out" && i + 1 < argc) {
        profile_path = argv[++i];
      } else if (a == "--timeseries-out" && i + 1 < argc) {
        timeseries_path = argv[++i];
      } else if (a == "--sample-every" && i + 1 < argc) {
        sample_every = static_cast<unsigned>(std::atoi(argv[++i]));
      } else {
        usage();
        return 1;
      }
    }
    return cmd_run(static_cast<unsigned>(std::atoi(argv[2])),
                   static_cast<std::uint64_t>(std::atoll(argv[3])),
                   metrics_path, trace_path, audit_path, profile_path,
                   timeseries_path, sample_every);
  }
  if (cmd == "report") {
    ss::telemetry::ReportInputs in;
    std::string json_out;
    for (int i = 2; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--metrics" && i + 1 < argc) {
        in.metrics_path = argv[++i];
      } else if (a == "--audit" && i + 1 < argc) {
        in.audit_path = argv[++i];
      } else if (a == "--profile" && i + 1 < argc) {
        in.profile_path = argv[++i];
      } else if (a == "--timeseries" && i + 1 < argc) {
        in.timeseries_path = argv[++i];
      } else if (a == "--json-out" && i + 1 < argc) {
        json_out = argv[++i];
      } else {
        usage();
        return 1;
      }
    }
    return cmd_report(in, json_out);
  }
  if (cmd == "benchdiff" && argc >= 4) {
    ss::telemetry::BenchDiffOptions opts;
    for (int i = 4; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--rate-tol" && i + 1 < argc) {
        opts.rate_tolerance_pct = std::atof(argv[++i]);
      } else if (a == "--cycles-tol" && i + 1 < argc) {
        opts.cycles_tolerance_pct = std::atof(argv[++i]);
      } else if (a == "--absolute") {
        opts.absolute = true;
      } else {
        usage();
        return 1;
      }
    }
    return cmd_benchdiff(argv[2], argv[3], opts);
  }
  if (cmd == "audit" && argc >= 4) {
    std::string out_path;
    std::uint64_t fault_seed = 0;
    unsigned sample_every = 64;
    bool watchdog_on = false;
    bool overload = false;
    for (int i = 4; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (a == "--fault-seed" && i + 1 < argc) {
        fault_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (a == "--sample-every" && i + 1 < argc) {
        sample_every = static_cast<unsigned>(std::atoi(argv[++i]));
      } else if (a == "--watchdog") {
        watchdog_on = true;
      } else if (a == "--overload") {
        overload = true;
      } else {
        usage();
        return 1;
      }
    }
    return cmd_audit(static_cast<unsigned>(std::atoi(argv[2])),
                     static_cast<std::uint64_t>(std::atoll(argv[3])),
                     out_path, fault_seed, sample_every, watchdog_on,
                     overload);
  }
  usage();
  return 1;
}
