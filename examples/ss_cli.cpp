// ss_cli — a command-line front end over the public API.
//
//   ss_cli solve <streams> <frame_bytes> <gbps>   Figure-1 framework query
//   ss_cli admit <spec-file|->                    parse + admission verdict
//   ss_cli area  <slots>                          Virtex-I/II area & clock
//   ss_cli trace                                  a traced 8-cycle DWCS run
//
// Run without arguments for a demonstration of all four subcommands.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/admission.hpp"
#include "core/framework.hpp"
#include "core/spec_parser.hpp"
#include "hw/area_model.hpp"
#include "hw/scheduler_chip.hpp"
#include "hw/trace.hpp"

namespace {

int cmd_solve(unsigned streams, std::uint64_t frame, double gbps) {
  const ss::core::SolutionFramework fw;
  const ss::core::Solution s = fw.solve({streams, frame, gbps});
  std::printf("application: %u streams, %llu B frames, %.1f Gb/s\n", streams,
              static_cast<unsigned long long>(frame), gbps);
  std::printf("required:    %.3e decisions/s\n", s.required_rate);
  std::printf("solution:    %s%s, %u slots, %u stream(s)/slot, %s\n",
              s.arch == ss::hw::ArchConfig::kBlockArchitecture ? "BA" : "WR",
              s.block_scheduling ? "+block-scheduling" : "", s.slots,
              s.streams_per_slot, s.device.c_str());
  std::printf("achievable:  %.3e frames/s -> %s", s.achievable_rate,
              s.feasible ? "FEASIBLE\n" : "infeasible");
  if (!s.feasible) {
    std::printf(" (%.1f%% of packet-times missed)\n", s.degradation * 100);
  }
  return s.feasible ? 0 : 2;
}

int cmd_admit(const std::string& path) {
  std::string text;
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  const auto parsed = ss::core::parse_stream_specs(text);
  if (!parsed.ok) {
    for (const auto& e : parsed.errors) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), e.line,
                   e.message.c_str());
    }
    return 1;
  }
  const auto rep = ss::core::AdmissionController::analyze(parsed.streams);
  std::printf("%zu streams, reserved utilization %.3f -> %s\n",
              parsed.streams.size(), rep.reserved_utilization,
              rep.admitted ? "ADMITTED" : "REJECTED");
  for (std::size_t i = 0; i < rep.entries.size(); ++i) {
    const auto& e = rep.entries[i];
    std::printf("  [%zu] %-40s share=%.3f delay<=%.0f pt%s\n", i + 1,
                ss::core::render_stream_spec(parsed.streams[i]).c_str(),
                e.guaranteed_share, e.delay_bound_packet_times,
                e.best_effort ? " (best effort)" : "");
  }
  if (!rep.admitted) std::printf("  reason: %s\n", rep.reason.c_str());
  return rep.admitted ? 0 : 2;
}

int cmd_area(unsigned slots) {
  for (const auto fam :
       {ss::hw::FpgaFamily::kVirtexI, ss::hw::FpgaFamily::kVirtexII}) {
    const ss::hw::AreaModel m(fam);
    for (const auto cfg : {ss::hw::ArchConfig::kBlockArchitecture,
                           ss::hw::ArchConfig::kWinnerRouting}) {
      const auto b = m.area(slots, cfg);
      const auto* dev = m.smallest_fit(slots, cfg);
      std::printf("%s %s: %u slices (ctl %u + reg %u + dec %u + route %u), "
                  "%.1f MHz, fits %s\n",
                  fam == ss::hw::FpgaFamily::kVirtexI ? "Virtex-I " : "Virtex-II",
                  cfg == ss::hw::ArchConfig::kBlockArchitecture ? "BA" : "WR",
                  b.total(), b.control_slices, b.register_slices,
                  b.decision_slices, b.routing_slices,
                  m.clock_mhz(slots, cfg),
                  dev ? dev->name.c_str() : "(nothing)");
    }
  }
  return 0;
}

int cmd_trace() {
  ss::hw::ChipConfig cfg;
  cfg.slots = 4;
  cfg.cmp_mode = ss::hw::ComparisonMode::kDwcsFull;
  ss::hw::SchedulerChip chip(cfg);
  for (unsigned i = 0; i < 4; ++i) {
    ss::hw::SlotConfig sc;
    sc.mode = ss::hw::SlotMode::kDwcs;
    sc.period = 2 + i;
    sc.loss_num = 1;
    sc.loss_den = 4;
    sc.initial_deadline = ss::hw::Deadline{i + 1};
    chip.load_slot(static_cast<ss::hw::SlotId>(i), sc);
  }
  ss::hw::Tracer tracer;
  chip.attach_tracer(&tracer);
  for (int k = 0; k < 8; ++k) {
    for (unsigned i = 0; i < 4; ++i) {
      if ((k + i) % 2 == 0) chip.push_request(static_cast<ss::hw::SlotId>(i));
    }
    chip.run_decision_cycle();
  }
  std::fputs(tracer.render_all().c_str(), stdout);
  return 0;
}

void usage() {
  std::puts("usage: ss_cli solve <streams> <frame_bytes> <gbps>");
  std::puts("       ss_cli admit <spec-file|->");
  std::puts("       ss_cli area <slots>");
  std::puts("       ss_cli trace");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    // Demonstration mode: one of everything.
    std::puts("== ss_cli demo (run with a subcommand for real use) ==\n");
    std::puts("--- solve 32 1500 10.0 ---");
    cmd_solve(32, 1500, 10.0);
    std::puts("\n--- area 16 ---");
    cmd_area(16);
    std::puts("\n--- trace ---");
    cmd_trace();
    usage();
    return 0;
  }
  const std::string cmd = argv[1];
  if (cmd == "solve" && argc == 5) {
    return cmd_solve(static_cast<unsigned>(std::atoi(argv[2])),
                     static_cast<std::uint64_t>(std::atoll(argv[3])),
                     std::atof(argv[4]));
  }
  if (cmd == "admit" && argc == 3) return cmd_admit(argv[2]);
  if (cmd == "area" && argc == 3) {
    return cmd_area(static_cast<unsigned>(std::atoi(argv[2])));
  }
  if (cmd == "trace") return cmd_trace();
  usage();
  return 1;
}
