// fuzz_ss.cpp — differential fuzzing + deterministic replay CLI.
//
// The command-line face of src/testing: generates randomized scenarios
// over the configuration lattice, runs every scheduler implementation in
// lock-step, and on divergence shrinks the event stream to a minimal
// reproducer and serializes it so the failure is a one-command repro.
//
//   fuzz_ss --seed 7 --scenarios 50 --events 1000     # a fuzz campaign
//   fuzz_ss --seed 7 --seconds 30                     # time-budgeted smoke
//   fuzz_ss --seed 7 --out run.sst                    # byte-deterministic
//                                                       trace capture
//   fuzz_ss --replay fuzz_failure.sst                 # deterministic repro
//   fuzz_ss --seed 7 --inject-fault 3                 # self-test: corrupt
//                                                       the oracle's 3rd
//                                                       grant, shrink it
//   fuzz_ss --seed 7 --explore-batch                  # also sample the
//                                                       block batch_depth axis
//
// Exit status: 0 = no divergence (or replay reproduced nothing), 1 = a
// divergence was found (minimized reproducer written), 2 = usage/IO
// error, 3 = replay ran clean but its digest differs from the capture's
// expect_digest (semantics drifted since the trace was recorded).  CI
// scripts rely on 2-vs-3 to tell "bad file" from "stale file".
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "testing/differential_executor.hpp"
#include "testing/shrinker.hpp"
#include "testing/trace_io.hpp"
#include "testing/workload_fuzzer.hpp"

namespace {

using namespace ss::testing;

struct Args {
  std::uint64_t seed = 1;
  std::uint64_t scenarios = 20;
  std::size_t events = 1000;
  double seconds = 0;  // 0 = no time budget (scenario count governs)
  std::uint64_t inject_fault = 0;
  bool explore_batch = false;
  std::string out;     // trace capture path (fuzz mode)
  std::string replay;  // replay path; empty = fuzz mode
};

const char* discipline_str(Discipline d) {
  switch (d) {
    case Discipline::kDwcs: return "dwcs";
    case Discipline::kEdf: return "edf";
    case Discipline::kStaticPrio: return "static";
    case Discipline::kFairTag: return "fairtag";
  }
  return "?";
}

void print_point(const Scenario& sc) {
  std::cout << "N=" << sc.fabric.slots << ' ' << discipline_str(sc.fabric.discipline)
            << (sc.fabric.block_mode ? (sc.fabric.min_first ? " block-min" : " block-max")
                                     : " wr")
            << (sc.aggregation.empty() ? "" : " +agg") << " events="
            << sc.events.size();
  if (sc.fabric.batch_depth > 0) {
    std::cout << " batch=" << sc.fabric.batch_depth;
  }
}

int usage() {
  std::cerr <<
      "usage: fuzz_ss [--seed S] [--scenarios K] [--events N] [--seconds T]\n"
      "               [--out FILE] [--inject-fault G] [--explore-batch]\n"
      "       fuzz_ss --replay FILE\n";
  return 2;
}

int replay_mode(const std::string& path) {
  TraceFile tf;
  try {
    tf = load_file(path);
  } catch (const std::exception& e) {
    std::cerr << "fuzz_ss: " << e.what() << '\n';
    return 2;
  }
  const DifferentialExecutor ex;
  const RunResult r = ex.run(tf.scenario);
  std::cout << "replay ";
  print_point(tf.scenario);
  std::cout << "\n  decisions=" << r.decisions << " grants=" << r.grants
            << " drops=" << r.drops << " digest=" << r.digest << '\n';
  const bool stale = tf.expected_digest && *tf.expected_digest != r.digest;
  if (stale) {
    std::cout << "  STALE: digest differs from capture ("
              << *tf.expected_digest << ") — semantics changed since\n";
  }
  if (r.diverged) {
    std::cout << "  DIVERGENCE at event " << r.event_index << " (decision "
              << r.decision_cycle << "): " << r.detail << '\n';
    return 1;
  }
  std::cout << "  no divergence\n";
  return stale ? 3 : 0;
}

int fuzz_mode(const Args& args) {
  WorkloadFuzzer::Options fo;
  fo.seed = args.seed;
  fo.events_per_scenario = args.events;
  fo.explore_batch = args.explore_batch;
  WorkloadFuzzer fuzzer(fo);
  const DifferentialExecutor ex;

  std::ofstream trace;
  if (!args.out.empty()) {
    trace.open(args.out, std::ios::binary);
    if (!trace) {
      std::cerr << "fuzz_ss: cannot open " << args.out << '\n';
      return 2;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  std::uint64_t total_decisions = 0, total_grants = 0;
  for (std::uint64_t k = 0;; ++k) {
    if (args.seconds > 0) {
      if (elapsed() >= args.seconds) break;
    } else if (k >= args.scenarios) {
      break;
    }

    Scenario sc = fuzzer.next();
    sc.inject_fault_at_grant = args.inject_fault;
    const RunResult r = ex.run(sc);
    total_decisions += r.decisions;
    total_grants += r.grants;

    std::cout << "scenario " << k << ": ";
    print_point(sc);
    std::cout << " decisions=" << r.decisions << " digest=" << r.digest
              << (r.hwpq_checked ? " hwpq" : "") << '\n';
    if (trace.is_open()) {
      trace << serialize(sc, r.diverged ? std::optional<std::uint64_t>{}
                                        : std::optional{r.digest});
    }

    if (r.diverged) {
      std::cout << "DIVERGENCE at event " << r.event_index << " (decision "
                << r.decision_cycle << "): " << r.detail << "\nshrinking...\n";
      const ShrinkResult s = shrink(sc, ex);
      const std::string repro = "fuzz_failure_seed" +
                                std::to_string(args.seed) + "_scenario" +
                                std::to_string(k) + ".sst";
      save_file(repro, s.minimal, s.divergence.digest);
      std::cout << "minimized " << s.initial_events << " -> "
                << s.final_events << " events in " << s.executor_runs
                << " executor runs\n"
                << "reproducer written to " << repro << "\n"
                << "replay with: fuzz_ss --replay " << repro << '\n';
      return 1;
    }
  }

  std::cout << "ok: " << fuzzer.scenarios_generated() << " scenarios, "
            << total_decisions << " differential decisions, " << total_grants
            << " grants, " << elapsed() << " s, no divergence\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](std::uint64_t& dst) {
      if (i + 1 >= argc) return false;
      dst = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    if (a == "--seed") {
      if (!value(args.seed)) return usage();
    } else if (a == "--scenarios") {
      if (!value(args.scenarios)) return usage();
    } else if (a == "--events") {
      std::uint64_t v = 0;
      if (!value(v)) return usage();
      args.events = static_cast<std::size_t>(v);
    } else if (a == "--seconds") {
      if (i + 1 >= argc) return usage();
      args.seconds = std::strtod(argv[++i], nullptr);
    } else if (a == "--inject-fault") {
      if (!value(args.inject_fault)) return usage();
    } else if (a == "--explore-batch") {
      args.explore_batch = true;
    } else if (a == "--out") {
      if (i + 1 >= argc) return usage();
      args.out = argv[++i];
    } else if (a == "--replay") {
      if (i + 1 >= argc) return usage();
      args.replay = argv[++i];
    } else {
      return usage();
    }
  }
  return args.replay.empty() ? fuzz_mode(args) : replay_mode(args.replay);
}
