// fuzz_ss.cpp — differential fuzzing + deterministic replay CLI.
//
// The command-line face of src/testing: generates randomized scenarios
// over the configuration lattice, runs every scheduler implementation in
// lock-step, and on divergence shrinks the event stream to a minimal
// reproducer and serializes it so the failure is a one-command repro.
//
//   fuzz_ss --seed 7 --scenarios 50 --events 1000     # a fuzz campaign
//   fuzz_ss --seed 7 --seconds 30                     # time-budgeted smoke
//   fuzz_ss --seed 7 --out run.sst                    # byte-deterministic
//                                                       trace capture
//   fuzz_ss --replay fuzz_failure.sst                 # deterministic repro
//   fuzz_ss --seed 7 --inject-fault 3                 # self-test: corrupt
//                                                       the oracle's 3rd
//                                                       grant, shrink it
//   fuzz_ss --seed 7 --explore-batch                  # also sample the
//                                                       block batch_depth axis
//   fuzz_ss --seed 7 --explore-rank                   # also sample the
//                                                       rank-layer axis
//                                                       (discipline x PIFO
//                                                       substrate)
//   fuzz_ss --seed 7 --fault-seed 42                  # every scenario runs
//                                                       under a seeded
//                                                       hardware fault plane
//   fuzz_ss --seed 7 --audit-out audit.json           # black-box flight
//                                                       recorder + rule
//                                                       provenance dump
//
// Exit status: 0 = no divergence (or replay reproduced nothing), 1 = a
// divergence was found (minimized reproducer written), 2 = usage/IO
// error, 3 = replay ran clean but its digest differs from the capture's
// expect_digest (semantics drifted since the trace was recorded).  CI
// scripts rely on 2-vs-3 to tell "bad file" from "stale file".
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "telemetry/timeseries.hpp"
#include "testing/differential_executor.hpp"
#include "testing/rank_equivalence.hpp"
#include "testing/shrinker.hpp"
#include "testing/trace_io.hpp"
#include "testing/workload_fuzzer.hpp"

namespace {

using namespace ss::testing;

struct Args {
  std::uint64_t seed = 1;
  std::uint64_t scenarios = 20;
  std::size_t events = 1000;
  double seconds = 0;  // 0 = no time budget (scenario count governs)
  std::uint64_t inject_fault = 0;
  std::uint64_t fault_seed = 0;  // non-zero: every scenario gets a fault plane
  bool explore_batch = false;
  bool explore_rank = false;
  std::string out;     // trace capture path (fuzz mode)
  std::string replay;  // replay path; empty = fuzz mode
  std::string metrics_json;  // write the run's metrics snapshot here
  std::string trace_out;     // write chip Chrome trace-event JSON here
  std::string audit_out;     // write the ss-audit-v2 black-box dump here
  std::string timeseries_out;  // write the ss-timeseries-v1 rings here
  // Audit sampling period (1 = every decision).  The fuzzer keeps full
  // audit by default — it is a correctness tool, not a production loop —
  // but the flag lets campaigns measure the sampled configuration.
  unsigned sample_every = 1;
};

bool write_text_file(const std::string& path, const std::string& body) {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "fuzz_ss: cannot open " << path << '\n';
    return false;
  }
  f << body;
  return static_cast<bool>(f);
}

DifferentialExecutor::Options exec_options(
    const Args& args, ss::telemetry::MetricsRegistry* reg,
    ss::telemetry::AuditSession* audit) {
  DifferentialExecutor::Options opt;
  opt.metrics = reg;
  opt.audit = audit;
  if (!args.trace_out.empty()) {
    opt.export_chrome_trace = true;
    opt.trace_depth = 4096;  // a Perfetto-sized window, not just the tail
  }
  return opt;
}

void print_divergence_context(const RunResult& r, const Args& args,
                              const ss::telemetry::TimeSeries* ts) {
  if (!r.chip_trace_tail.empty()) {
    std::cout << "  chip trace (last decision cycles before divergence):\n"
              << r.chip_trace_tail;
  }
  if (!r.metrics_json.empty()) {
    std::cout << "  metrics: " << r.metrics_json << '\n';
  }
  if (ts != nullptr && ts->size() > 0) {
    // One interval per scenario (manually sampled): the rate context
    // around the diverging scenario, not just end-of-campaign totals.
    std::cout << "  time-series tail (one interval per scenario):\n"
              << ts->tail_text(8);
  }
  if (!r.audit_json.empty() && !args.audit_out.empty()) {
    std::cout << "  audit dump (cause \"divergence\") -> " << args.audit_out
              << '\n';
  }
}

const char* discipline_str(Discipline d) {
  switch (d) {
    case Discipline::kDwcs: return "dwcs";
    case Discipline::kEdf: return "edf";
    case Discipline::kStaticPrio: return "static";
    case Discipline::kFairTag: return "fairtag";
  }
  return "?";
}

void print_point(const Scenario& sc) {
  std::cout << "N=" << sc.fabric.slots << ' ' << discipline_str(sc.fabric.discipline)
            << (sc.fabric.block_mode ? (sc.fabric.min_first ? " block-min" : " block-max")
                                     : " wr")
            << (sc.aggregation.empty() ? "" : " +agg") << " events="
            << sc.events.size();
  if (sc.fabric.batch_depth > 0) {
    std::cout << " batch=" << sc.fabric.batch_depth;
  }
  if (sc.rank.enabled) {
    std::cout << " rank=" << rank_disc_name(sc.rank.disc) << '@'
              << rank_backend_name(sc.rank.backend);
    if (sc.rank.backend == RankBackend::kSpPifo) {
      std::cout << '/' << unsigned{sc.rank.bands} << 'q';
    }
  }
}

int usage() {
  std::cerr <<
      "usage: fuzz_ss [--seed S] [--scenarios K] [--events N] [--seconds T]\n"
      "               [--out FILE] [--inject-fault G] [--fault-seed S]\n"
      "               [--explore-batch] [--explore-rank]\n"
      "               [--metrics-json FILE]\n"
      "               [--trace-out FILE] [--audit-out FILE]\n"
      "               [--timeseries-out FILE] [--sample-every N]\n"
      "       fuzz_ss --replay FILE [--metrics-json FILE] [--trace-out FILE]\n"
      "               [--audit-out FILE] [--timeseries-out FILE]\n"
      "               [--sample-every N]\n";
  return 2;
}

int replay_mode(const Args& args) {
  TraceFile tf;
  try {
    tf = load_file(args.replay);
  } catch (const std::exception& e) {
    std::cerr << "fuzz_ss: " << e.what() << '\n';
    return 2;
  }
  ss::telemetry::MetricsRegistry reg;
  // The audit session is sized for the widest fabric; the executor resets
  // the violation baselines per run (begin_run).
  ss::telemetry::AuditSession audit(ss::telemetry::kAuditMaxStreams);
  audit.set_dump_path(args.audit_out);
  audit.set_sampling(args.sample_every);
  ss::telemetry::TimeSeries ts(reg);
  const DifferentialExecutor ex(exec_options(
      args, &reg, args.audit_out.empty() ? nullptr : &audit));
  const RunResult r = ex.run(tf.scenario);
  ts.sample_once();  // one interval: the whole replay
  std::cout << "replay ";
  print_point(tf.scenario);
  std::cout << "\n  decisions=" << r.decisions << " grants=" << r.grants
            << " drops=" << r.drops << " digest=" << r.digest << '\n';
  const bool stale = tf.expected_digest && *tf.expected_digest != r.digest;
  if (stale) {
    std::cout << "  STALE: digest differs from capture ("
              << *tf.expected_digest << ") — semantics changed since\n";
  }
  if (!args.metrics_json.empty() &&
      !write_text_file(args.metrics_json, reg.to_json() + "\n")) {
    return 2;
  }
  if (!args.trace_out.empty() &&
      !write_text_file(args.trace_out, r.chip_trace_chrome_json)) {
    return 2;
  }
  if (!args.timeseries_out.empty() && !ts.write_json(args.timeseries_out)) {
    std::cerr << "fuzz_ss: cannot open " << args.timeseries_out << '\n';
    return 2;
  }
  if (r.diverged) {
    std::cout << "  DIVERGENCE at event " << r.event_index << " (decision "
              << r.decision_cycle << "): " << r.detail << '\n';
    print_divergence_context(r, args, &ts);
    return 1;
  }
  if (!args.audit_out.empty() && !audit.dumped()) audit.dump("on_demand");
  std::cout << "  no divergence\n";
  return stale ? 3 : 0;
}

int fuzz_mode(const Args& args) {
  WorkloadFuzzer::Options fo;
  fo.seed = args.seed;
  fo.events_per_scenario = args.events;
  fo.explore_batch = args.explore_batch;
  fo.explore_rank = args.explore_rank;
  if (args.fault_seed != 0) {
    // Fault campaign: every scenario carries a seeded hardware fault
    // plane.  The schedule must still match the fault-free oracle, so a
    // plain "no divergence" exit proves the recovery path is transparent.
    fo.fault_probability = 1.0;
    fo.fault_seed = args.fault_seed;
  }
  WorkloadFuzzer fuzzer(fo);
  ss::telemetry::MetricsRegistry reg;
  // One audit session spans the whole campaign: the rule profile
  // accumulates across scenarios while the flight recorder keeps the last
  // decisions, so a late divergence still dumps a populated black box.
  ss::telemetry::AuditSession audit(ss::telemetry::kAuditMaxStreams);
  audit.set_dump_path(args.audit_out);
  audit.set_sampling(args.sample_every);
  // Sampled manually, one interval per scenario: the campaign's rate
  // history with scenario granularity, and on divergence the tail shows
  // which scenarios around the failure were doing what.
  ss::telemetry::TimeSeries ts(reg);
  const DifferentialExecutor ex(exec_options(
      args, &reg, args.audit_out.empty() ? nullptr : &audit));

  std::ofstream trace;
  if (!args.out.empty()) {
    trace.open(args.out, std::ios::binary);
    if (!trace) {
      std::cerr << "fuzz_ss: cannot open " << args.out << '\n';
      return 2;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  std::uint64_t total_decisions = 0, total_grants = 0;
  std::uint64_t total_faults = 0, total_recoveries = 0, total_failovers = 0;
  std::string last_chrome_trace;
  auto write_telemetry = [&] {
    if (!args.metrics_json.empty() &&
        !write_text_file(args.metrics_json, reg.to_json() + "\n")) {
      return false;
    }
    if (!args.trace_out.empty() &&
        !write_text_file(args.trace_out, last_chrome_trace)) {
      return false;
    }
    if (!args.timeseries_out.empty() &&
        !ts.write_json(args.timeseries_out)) {
      std::cerr << "fuzz_ss: cannot open " << args.timeseries_out << '\n';
      return false;
    }
    return true;
  };
  for (std::uint64_t k = 0;; ++k) {
    if (args.seconds > 0) {
      if (elapsed() >= args.seconds) break;
    } else if (k >= args.scenarios) {
      break;
    }

    Scenario sc = fuzzer.next();
    sc.inject_fault_at_grant = args.inject_fault;
    const RunResult r = ex.run(sc);
    ts.sample_once();  // one interval per scenario
    total_decisions += r.decisions;
    total_grants += r.grants;
    total_faults += r.faults_injected;
    total_recoveries += r.robust.recoveries;
    total_failovers += r.failed_over ? 1 : 0;
    if (!r.chip_trace_chrome_json.empty()) {
      last_chrome_trace = r.chip_trace_chrome_json;
    }

    std::cout << "scenario " << k << ": ";
    print_point(sc);
    std::cout << " decisions=" << r.decisions << " digest=" << r.digest
              << (r.hwpq_checked ? " hwpq" : "");
    if (r.rank_checked) {
      std::cout << " rank_served=" << r.rank_served;
      if (sc.rank.backend == RankBackend::kSpPifo) {
        std::cout << " rank_inv=" << r.rank_inversions;
      }
    }
    if (sc.faults.enabled()) {
      std::cout << " faults=" << r.faults_injected
                << (r.failed_over ? " FAILOVER" : "");
    }
    std::cout << '\n';
    if (trace.is_open()) {
      trace << serialize(sc, r.diverged ? std::optional<std::uint64_t>{}
                                        : std::optional{r.digest});
    }

    if (r.diverged) {
      std::cout << "DIVERGENCE at event " << r.event_index << " (decision "
                << r.decision_cycle << "): " << r.detail << '\n';
      print_divergence_context(r, args, &ts);
      std::cout << "shrinking...\n";
      const ShrinkResult s = shrink(sc, ex);
      const std::string repro = "fuzz_failure_seed" +
                                std::to_string(args.seed) + "_scenario" +
                                std::to_string(k) + ".sst";
      save_file(repro, s.minimal, s.divergence.digest);
      std::cout << "minimized " << s.initial_events << " -> "
                << s.final_events << " events in " << s.executor_runs
                << " executor runs\n"
                << "reproducer written to " << repro << "\n"
                << "replay with: fuzz_ss --replay " << repro << '\n';
      write_telemetry();
      return 1;
    }
  }

  if (!write_telemetry()) return 2;
  if (!args.audit_out.empty()) {
    if (!audit.dumped()) audit.dump("on_demand");
    std::cout << "audit dump (" << audit.audit().comparisons()
              << " comparisons, cause \"" << audit.last_cause() << "\") -> "
              << args.audit_out << '\n';
  }
  std::cout << "ok: " << fuzzer.scenarios_generated() << " scenarios, "
            << total_decisions << " differential decisions, " << total_grants
            << " grants, " << elapsed() << " s, no divergence\n";
  if (args.fault_seed != 0) {
    std::cout << "fault plane: " << total_faults << " faults injected, "
              << total_recoveries << " recoveries, " << total_failovers
              << " failovers — schedule stayed oracle-equivalent\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](std::uint64_t& dst) {
      if (i + 1 >= argc) return false;
      dst = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    if (a == "--seed") {
      if (!value(args.seed)) return usage();
    } else if (a == "--scenarios") {
      if (!value(args.scenarios)) return usage();
    } else if (a == "--events") {
      std::uint64_t v = 0;
      if (!value(v)) return usage();
      args.events = static_cast<std::size_t>(v);
    } else if (a == "--seconds") {
      if (i + 1 >= argc) return usage();
      args.seconds = std::strtod(argv[++i], nullptr);
    } else if (a == "--inject-fault") {
      if (!value(args.inject_fault)) return usage();
    } else if (a == "--fault-seed") {
      if (!value(args.fault_seed)) return usage();
    } else if (a == "--explore-batch") {
      args.explore_batch = true;
    } else if (a == "--explore-rank") {
      args.explore_rank = true;
    } else if (a == "--out") {
      if (i + 1 >= argc) return usage();
      args.out = argv[++i];
    } else if (a == "--replay") {
      if (i + 1 >= argc) return usage();
      args.replay = argv[++i];
    } else if (a == "--metrics-json") {
      if (i + 1 >= argc) return usage();
      args.metrics_json = argv[++i];
    } else if (a == "--trace-out") {
      if (i + 1 >= argc) return usage();
      args.trace_out = argv[++i];
    } else if (a == "--audit-out") {
      if (i + 1 >= argc) return usage();
      args.audit_out = argv[++i];
    } else if (a == "--timeseries-out") {
      if (i + 1 >= argc) return usage();
      args.timeseries_out = argv[++i];
    } else if (a == "--sample-every") {
      if (i + 1 >= argc) return usage();
      args.sample_every =
          static_cast<unsigned>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      return usage();
    }
  }
  return args.replay.empty() ? fuzz_mode(args) : replay_mode(args);
}
