// quickstart — the smallest complete use of the ShareStreams public API.
//
// Builds a 4-slot scheduler chip (the cycle-level simulation of the
// Virtex-I fabric), loads one EDF stream per slot, feeds requests, and
// prints which stream wins each decision cycle and why that order is the
// EDF order.  Start here; host_router.cpp shows the full endsystem.
#include <cstdio>

#include "hw/scheduler_chip.hpp"

int main() {
  using namespace ss::hw;

  // 1. Configure the fabric: 4 stream-slots, DWCS comparators, winner-only
  //    routing (the max-finding configuration).
  ChipConfig cfg;
  cfg.slots = 4;
  cfg.cmp_mode = ComparisonMode::kTagOnly;  // EDF mode: deadlines only
  cfg.block_mode = false;
  SchedulerChip chip(cfg);

  // 2. Load per-stream service constraints into the Register Base blocks.
  //    Stream i requests service every `period` packet-times; its first
  //    deadline staggers the streams.
  const std::uint16_t periods[4] = {8, 8, 4, 2};  // a 1:1:2:4 split
  for (unsigned i = 0; i < 4; ++i) {
    SlotConfig slot;
    slot.mode = SlotMode::kEdf;
    slot.period = periods[i];
    slot.initial_deadline = Deadline{periods[i]};
    chip.load_slot(static_cast<SlotId>(i), slot);
  }

  // 3. Queue a few requests per stream (in the real system these are
  //    16-bit arrival-time offsets pushed over PCI by the Queue Manager).
  for (unsigned i = 0; i < 4; ++i) {
    for (int k = 0; k < 8; ++k) chip.push_request(static_cast<SlotId>(i));
  }

  // 4. Run decision cycles: each takes log2(4)=2 shuffle passes plus the
  //    priority-update and I/O cycles (13 hardware cycles at 4 slots).
  std::printf("cycle | winner | vtime | deadline met | hw cycles\n");
  std::printf("------+--------+-------+--------------+----------\n");
  std::uint64_t served[4] = {0, 0, 0, 0};
  for (int k = 0; k < 16; ++k) {
    const DecisionOutcome out = chip.run_decision_cycle();
    if (out.idle) break;
    const Grant& g = out.grants.front();
    std::printf("%5d | S%u     | %5llu | %12s | %9llu\n", k, g.slot + 1,
                static_cast<unsigned long long>(chip.vtime()),
                g.met_deadline ? "yes" : "LATE",
                static_cast<unsigned long long>(out.hw_cycles));
    ++served[g.slot];
  }

  std::printf("\nservice counts after 16 packet-times: S1=%llu S2=%llu "
              "S3=%llu S4=%llu (periods 8/8/4/2 -> expect 2/2/4/8)\n",
              static_cast<unsigned long long>(served[0]),
              static_cast<unsigned long long>(served[1]),
              static_cast<unsigned long long>(served[2]),
              static_cast<unsigned long long>(served[3]));
  std::printf("total hardware cycles: %llu for %llu decisions\n",
              static_cast<unsigned long long>(chip.hw_cycles()),
              static_cast<unsigned long long>(chip.decision_cycles()));
  return 0;
}
