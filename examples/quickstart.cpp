// quickstart — the smallest complete use of the ShareStreams public API.
//
// Builds a 4-slot scheduler chip (the cycle-level simulation of the
// Virtex-I fabric), loads one EDF stream per slot, feeds requests, and
// prints which stream wins each decision cycle and why that order is the
// EDF order.  Start here; host_router.cpp shows the full endsystem.
//
// Telemetry quickstart:
//   quickstart --metrics-json metrics.json --trace-out trace.json
// additionally runs the full endsystem pipeline (QM rings -> PCI -> chip
// -> TE -> link) with the metrics registry and frame-lifecycle trace
// attached, writing a single-line metrics snapshot and a Chrome
// trace-event JSON loadable in Perfetto (ui.perfetto.dev, "Open trace").
//
// Fault-plane quickstart:
//   quickstart --fault-seed 42        # seeded transient PCI/SRAM/chip faults
//   quickstart --inject-fault 200     # kill the chip at decision attempt 200
// runs the same pipeline under a deterministic hardware fault plane: the
// recovery policy retries with backoff, and on exhaustion the guard fails
// over to the software scheduler without dropping a frame.
//
// Audit quickstart:
//   quickstart --audit-out audit.json [--sample-every N]
// attaches a decision-audit session: every comparator resolution is
// attributed to its Table-2 rule, the last decisions ride in a flight-
// recorder ring, and the run ends with a single-line `ss-audit-v2` dump
// (docs/formats.md).  Rule profiles are sampled 1-in-N (default 64;
// N <= 1 audits every decision) — exact grant/violation/burn counters are
// unaffected, and winners are bit-identical at any rate.  Under the fault
// flags a forced failover dumps the black box automatically (cause
// "failover") — combine with --inject-fault to capture the chip's final
// decisions at the failover point.
//
// Observability quickstart:
//   quickstart --profile-out prof.json --watchdog --timeseries-out ts.json
// attaches the hot-path self-profiler (per-stage wall time as a
// flamegraph-style `ss-profile-v1` JSON), the anomaly watchdog (rolling-
// window rules that fire the flight recorder with cause
// "watchdog:<rule>"), and the continuous-telemetry sampler
// (`ss-timeseries-v1`: per-interval counter rates and windowed histogram
// percentiles; the watchdog evaluates over the same rings).  Merge the
// exports into one page with `ss_cli report`.
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/endsystem.hpp"
#include "hw/scheduler_chip.hpp"
#include "robust/fault_plan.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/watchdog.hpp"
#include "util/sim_time.hpp"

namespace {

/// The telemetry-instrumented pipeline run behind --metrics-json /
/// --trace-out / the fault flags: four fair-share flows through the
/// Figure-3 data path.
int run_instrumented_pipeline(const std::string& metrics_path,
                              const std::string& trace_path,
                              std::string audit_path,
                              const std::string& profile_path,
                              const std::string& timeseries_path,
                              bool watchdog_on, unsigned sample_every,
                              const ss::robust::FaultProfile& faults) {
  using namespace ss;

  telemetry::MetricsRegistry registry;
  telemetry::FrameTrace frame_trace;
  telemetry::Profiler profiler;
  // The black box rides along whenever requested — and always under the
  // fault flags or the watchdog, so an anomaly leaves a dump behind even
  // when the operator forgot to ask for one.
  if (audit_path.empty() && (faults.enabled() || watchdog_on)) {
    audit_path = "ss_audit_dump.json";
  }
  telemetry::AuditSession audit(4);
  audit.set_dump_path(audit_path);
  audit.set_sampling(sample_every);

  core::EndsystemConfig cfg;
  cfg.chip.slots = 4;
  cfg.chip.cmp_mode = hw::ComparisonMode::kTagOnly;
  cfg.link_gbps = 1.0;
  cfg.pci_batch = 32;
  cfg.metrics = &registry;
  cfg.frame_trace = &frame_trace;
  if (!audit_path.empty()) cfg.audit = &audit;
  if (!profile_path.empty()) cfg.profiler = &profiler;
  cfg.faults = faults;
  core::Endsystem es(cfg);

  // One interval sampler serves both consumers: the watchdog's rolling
  // rules and the --timeseries-out export read the same rings.
  telemetry::TimeSeries timeseries(registry);
  std::optional<telemetry::Watchdog> watchdog;
  if (watchdog_on) watchdog.emplace(timeseries, cfg.audit);
  const bool sampling = watchdog_on || !timeseries_path.empty();
  if (sampling) timeseries.start();

  const double ptime_ns = packet_time_ns(1500, cfg.link_gbps);
  const double weights[4] = {1.0, 1.0, 2.0, 4.0};
  for (unsigned i = 0; i < 4; ++i) {
    dwcs::StreamRequirement r;
    r.kind = dwcs::RequirementKind::kFairShare;
    r.weight = weights[i];
    const auto interval =
        static_cast<std::uint64_t>(ptime_ns * 8.0 / weights[i]);
    es.add_stream(r, std::make_unique<queueing::CbrGen>(interval), 1500);
  }
  const auto rep = es.run(std::vector<std::uint64_t>{500, 500, 1000, 2000});
  if (sampling) {
    timeseries.stop();  // takes the closing-window sample (final sweep)
  }
  if (watchdog_on) {
    std::printf("watchdog: %llu polls, %llu rule firings%s%s\n",
                static_cast<unsigned long long>(watchdog->polls()),
                static_cast<unsigned long long>(watchdog->fired()),
                watchdog->fired() > 0 ? ", last rule " : "",
                watchdog->fired() > 0 ? watchdog->last_rule().c_str() : "");
  }

  if (!metrics_path.empty()) {
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "quickstart: cannot open %s\n",
                   metrics_path.c_str());
      return 1;
    }
    const std::string json = registry.to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("metrics snapshot (%zu metrics) -> %s\n", registry.size(),
                metrics_path.c_str());
  }
  if (!timeseries_path.empty()) {
    if (!timeseries.write_json(timeseries_path)) {
      std::fprintf(stderr, "quickstart: cannot open %s\n",
                   timeseries_path.c_str());
      return 1;
    }
    std::printf("time series: %zu interval(s) at %lld ms cadence -> %s\n",
                timeseries.size(),
                static_cast<long long>(
                    timeseries.config().poll_interval.count()),
                timeseries_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!frame_trace.write_chrome_json(trace_path)) {
      std::fprintf(stderr, "quickstart: cannot open %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::printf("frame-lifecycle trace (%llu events) -> %s  "
                "(load in ui.perfetto.dev)\n",
                static_cast<unsigned long long>(frame_trace.recorded()),
                trace_path.c_str());
  }
  std::printf("pipeline: %llu frames through QM -> PCI -> chip -> TE in "
              "%llu decision cycles\n",
              static_cast<unsigned long long>(rep.frames),
              static_cast<unsigned long long>(rep.decision_cycles));
  if (faults.enabled()) {
    std::printf("fault plane: %llu faults injected, %llu retries, "
                "%llu recoveries, %llu exhausted\n",
                static_cast<unsigned long long>(rep.faults_injected),
                static_cast<unsigned long long>(rep.robust.retries),
                static_cast<unsigned long long>(rep.robust.recoveries),
                static_cast<unsigned long long>(rep.robust.exhausted));
    std::printf("%s\n", rep.failed_over
                            ? "FAILED OVER to the software scheduler — every "
                              "queued frame still reached the wire"
                            : "hardware path survived: every fault recovered "
                              "within the retry bound");
  }
  if (!profile_path.empty()) {
    if (!profiler.write_json(profile_path)) {
      std::fprintf(stderr, "quickstart: cannot open %s\n",
                   profile_path.c_str());
      return 1;
    }
    std::printf("profile: per-stage wall time (%s clock) -> %s\n",
                telemetry::Profiler::clock_name(), profile_path.c_str());
  }
  if (!audit_path.empty()) {
    if (!audit.dumped()) audit.dump("on_demand");
    std::printf("audit: %llu comparisons (%llu with sampled provenance, "
                "1-in-%u) across %llu decisions; flight recorder dump "
                "(cause \"%s\") -> %s\n",
                static_cast<unsigned long long>(audit.audit().comparisons()),
                static_cast<unsigned long long>(
                    audit.audit().comparisons_sampled()),
                audit.sampler().every(),
                static_cast<unsigned long long>(audit.recorder().recorded()),
                audit.last_cause().c_str(), audit_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ss::hw;

  std::string metrics_path, trace_path, audit_path, profile_path;
  std::string timeseries_path;
  bool watchdog_on = false;
  unsigned sample_every = 64;  // production default; <= 1 audits everything
  ss::robust::FaultProfile faults;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--audit-out") == 0 && i + 1 < argc) {
      audit_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile-out") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (std::strcmp(argv[i], "--timeseries-out") == 0 && i + 1 < argc) {
      timeseries_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sample-every") == 0 && i + 1 < argc) {
      sample_every =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--watchdog") == 0) {
      watchdog_on = true;
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      faults.seed = std::strtoull(argv[++i], nullptr, 10);
      faults.pci_fault_per64k = 700;   // ~1% per bus transaction
      faults.sram_fault_per64k = 700;
      faults.chip_fault_per64k = 700;
    } else if (std::strcmp(argv[i], "--inject-fault") == 0 && i + 1 < argc) {
      // Hard chip death at the K-th decision attempt: exercises failover.
      faults.chip_fail_after = std::strtoull(argv[++i], nullptr, 10);
      if (faults.seed == 0) faults.seed = 1;
    } else {
      std::fprintf(stderr,
                   "usage: quickstart [--metrics-json FILE] [--trace-out "
                   "FILE] [--audit-out FILE] [--profile-out FILE] "
                   "[--timeseries-out FILE] [--sample-every N] [--watchdog] "
                   "[--fault-seed S] [--inject-fault K]\n");
      return 2;
    }
  }
  if (!metrics_path.empty() || !trace_path.empty() || !audit_path.empty() ||
      !profile_path.empty() || !timeseries_path.empty() || watchdog_on ||
      faults.enabled()) {
    return run_instrumented_pipeline(metrics_path, trace_path, audit_path,
                                     profile_path, timeseries_path,
                                     watchdog_on, sample_every, faults);
  }

  // 1. Configure the fabric: 4 stream-slots, DWCS comparators, winner-only
  //    routing (the max-finding configuration).
  ChipConfig cfg;
  cfg.slots = 4;
  cfg.cmp_mode = ComparisonMode::kTagOnly;  // EDF mode: deadlines only
  cfg.block_mode = false;
  SchedulerChip chip(cfg);

  // 2. Load per-stream service constraints into the Register Base blocks.
  //    Stream i requests service every `period` packet-times; its first
  //    deadline staggers the streams.
  const std::uint16_t periods[4] = {8, 8, 4, 2};  // a 1:1:2:4 split
  for (unsigned i = 0; i < 4; ++i) {
    SlotConfig slot;
    slot.mode = SlotMode::kEdf;
    slot.period = periods[i];
    slot.initial_deadline = Deadline{periods[i]};
    chip.load_slot(static_cast<SlotId>(i), slot);
  }

  // 3. Queue a few requests per stream (in the real system these are
  //    16-bit arrival-time offsets pushed over PCI by the Queue Manager).
  for (unsigned i = 0; i < 4; ++i) {
    for (int k = 0; k < 8; ++k) chip.push_request(static_cast<SlotId>(i));
  }

  // 4. Run decision cycles: each takes log2(4)=2 shuffle passes plus the
  //    priority-update and I/O cycles (13 hardware cycles at 4 slots).
  std::printf("cycle | winner | vtime | deadline met | hw cycles\n");
  std::printf("------+--------+-------+--------------+----------\n");
  std::uint64_t served[4] = {0, 0, 0, 0};
  for (int k = 0; k < 16; ++k) {
    const DecisionOutcome out = chip.run_decision_cycle();
    if (out.idle) break;
    const Grant& g = out.grants.front();
    std::printf("%5d | S%u     | %5llu | %12s | %9llu\n", k, g.slot + 1,
                static_cast<unsigned long long>(chip.vtime()),
                g.met_deadline ? "yes" : "LATE",
                static_cast<unsigned long long>(out.hw_cycles));
    ++served[g.slot];
  }

  std::printf("\nservice counts after 16 packet-times: S1=%llu S2=%llu "
              "S3=%llu S4=%llu (periods 8/8/4/2 -> expect 2/2/4/8)\n",
              static_cast<unsigned long long>(served[0]),
              static_cast<unsigned long long>(served[1]),
              static_cast<unsigned long long>(served[2]),
              static_cast<unsigned long long>(served[3]));
  std::printf("total hardware cycles: %llu for %llu decisions\n",
              static_cast<unsigned long long>(chip.hw_cycles()),
              static_cast<unsigned long long>(chip.decision_cycles()));
  return 0;
}
